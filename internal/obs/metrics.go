package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing metric. Not synchronized: the
// simulation engine is single-goroutine, and sweep workers each own a
// private Registry merged after the fact.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a point-in-time metric.
type Gauge struct {
	v float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets chosen at
// construction. Observations beyond the last upper bound land in the
// implicit +Inf bucket. No locks, no dynamic resizing: Observe is a
// linear scan over a handful of bounds and two adds.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// instrumentKind discriminates the registry's instrument table.
type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
)

// instrument is one registered metric with its metadata.
type instrument struct {
	name string
	help string
	kind instrumentKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry owns a set of named instruments. Registration is idempotent:
// asking for an existing name of the same kind returns the same
// instrument, so pre-resolved bundles (SimMetrics) and ad-hoc lookups
// compose. Mismatched re-registration panics — it is always a wiring bug.
//
// A Registry is not synchronized; each simulation run owns one and
// completed registries merge across workers via Merge.
type Registry struct {
	by    map[string]*instrument
	order []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

func (r *Registry) lookup(name, help string, kind instrumentKind) *instrument {
	if in, ok := r.by[name]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: kind}
	r.by[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	in := r.lookup(name, help, kindCounter)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	in := r.lookup(name, help, kindGauge)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending upper bounds. Later calls ignore the bounds
// argument (the first registration wins).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	in := r.lookup(name, help, kindHistogram)
	if in.h == nil {
		bs := append([]float64(nil), bounds...)
		in.h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
	}
	return in.h
}

// Merge folds other into r: counters and histogram buckets sum, gauges
// take the maximum (the only commutative, worker-order-independent choice
// for point-in-time values). Instruments missing on either side are
// created/ignored as needed; histograms must share bucket bounds.
func (r *Registry) Merge(other *Registry) error {
	for _, in := range other.order {
		switch in.kind {
		case kindCounter:
			r.Counter(in.name, in.help).Add(in.c.v)
		case kindGauge:
			g := r.Gauge(in.name, in.help)
			if in.g.v > g.v {
				g.Set(in.g.v)
			}
		case kindHistogram:
			h := r.Histogram(in.name, in.help, in.h.bounds)
			if len(h.bounds) != len(in.h.bounds) {
				return fmt.Errorf("obs: histogram %q bucket count mismatch: %d vs %d", in.name, len(h.bounds), len(in.h.bounds))
			}
			for i, b := range h.bounds {
				if b != in.h.bounds[i] {
					return fmt.Errorf("obs: histogram %q bound %d mismatch: %g vs %g", in.name, i, b, in.h.bounds[i])
				}
			}
			for i, c := range in.h.counts {
				h.counts[i] += c
			}
			h.sum += in.h.sum
			h.count += in.h.count
		}
	}
	return nil
}

// sorted returns the instruments in name order, the deterministic export
// order regardless of registration interleaving across code paths.
func (r *Registry) sorted() []*instrument {
	out := append([]*instrument(nil), r.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// promFloat renders a float the way the Prometheus text format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format, instruments in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, in := range r.sorted() {
		typ := "counter"
		switch in.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, typ); err != nil {
			return err
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, promFloat(in.c.v))
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, promFloat(in.g.v))
		case kindHistogram:
			cum := uint64(0)
			for i, b := range in.h.bounds {
				cum += in.h.counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", in.name, promFloat(b), cum); err != nil {
					return err
				}
			}
			cum += in.h.counts[len(in.h.bounds)]
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", in.name, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", in.name, promFloat(in.h.sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", in.name, in.h.count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MetricSnapshot is the JSON form of one instrument.
type MetricSnapshot struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Histogram fields.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
}

// BucketSnapshot is one non-cumulative histogram bucket in JSON output;
// UpperBound is +Inf for the overflow bucket (rendered as "+Inf").
type BucketSnapshot struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// Snapshot returns the registry's instruments in name order.
func (r *Registry) Snapshot() []MetricSnapshot {
	out := make([]MetricSnapshot, 0, len(r.order))
	for _, in := range r.sorted() {
		s := MetricSnapshot{Name: in.name, Help: in.help}
		switch in.kind {
		case kindCounter:
			s.Type, s.Value = "counter", in.c.v
		case kindGauge:
			s.Type, s.Value = "gauge", in.g.v
		case kindHistogram:
			s.Type, s.Sum, s.Count = "histogram", in.h.sum, in.h.count
			for i, b := range in.h.bounds {
				s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: promFloat(b), Count: in.h.counts[i]})
			}
			s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: "+Inf", Count: in.h.counts[len(in.h.bounds)]})
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON exports the registry as an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
