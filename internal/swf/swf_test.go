package swf

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const sample = `; Version: 2.2
; Computer: IBM SP2
; Installation: SDSC
; MaxNodes: 128
; Note: this is a synthetic fixture.
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1
2 10 0 50 8 -1 -1 8 40 -1 1 4 1 -1 1 -1 -1 -1
3 25 2 300 1 -1 -1 1 600 -1 0 5 1 -1 1 -1 -1 -1
4 30 0 0 2 -1 -1 2 100 -1 4 5 1 -1 1 -1 -1 -1
`

func parseSample(t *testing.T) *Trace {
	t.Helper()
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestParseRecords(t *testing.T) {
	tr := parseSample(t)
	if len(tr.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(tr.Records))
	}
	r := tr.Records[0]
	if r.JobNumber != 1 || r.Submit != 0 || r.Wait != 5 || r.RunTime != 100 ||
		r.AllocProcs != 4 || r.ReqProcs != 4 || r.ReqTime != 200 || r.Status != 1 {
		t.Fatalf("record 0 parsed wrong: %+v", r)
	}
	if r.UsedMemory != Missing {
		t.Fatalf("UsedMemory = %d, want Missing", r.UsedMemory)
	}
}

func TestParseHeader(t *testing.T) {
	tr := parseSample(t)
	if v, ok := tr.Header.Get("version"); !ok || v != "2.2" {
		t.Fatalf("Version = %q, %v", v, ok)
	}
	if v, ok := tr.Header.Get("MaxNodes"); !ok || v != "128" {
		t.Fatalf("MaxNodes = %q, %v", v, ok)
	}
	if _, ok := tr.Header.Get("nope"); ok {
		t.Fatal("unexpected header key found")
	}
}

func TestParseBadLine(t *testing.T) {
	_, err := Parse(strings.NewReader("1 2 3\n"))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 1 {
		t.Fatalf("Line = %d, want 1", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 1") {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestParseNonNumericField(t *testing.T) {
	line := "1 0 5 abc 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n"
	if _, err := Parse(strings.NewReader(line)); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}

func TestParseRejectsGarbageValues(t *testing.T) {
	const good = "1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n"
	cases := []struct {
		name string
		line string
		want string // substring of the error message
	}{
		{"NaN runtime", "1 0 5 NaN 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "not finite"},
		{"infinite submit", "1 Inf 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "not finite"},
		{"negative infinity", "1 0 5 -Inf 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "not finite"},
		{"int64 overflow", "1 0 5 1e300 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "out of range"},
		{"negative runtime", "1 0 5 -100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "negative runtime"},
		{"negative submit", "1 -7 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "negative submit"},
		{"negative alloc procs", "1 0 5 100 -4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "negative allocated processor"},
		{"negative req procs", "1 0 5 100 4 -1 -1 -4 200 -1 1 3 1 -1 1 -1 -1 -1\n", "negative requested processor"},
		{"negative estimate", "1 0 5 100 4 -1 -1 4 -200 -1 1 3 1 -1 1 -1 -1 -1\n", "negative runtime estimate"},
		{"non-monotonic submit", good + "2 30 0 50 8 -1 -1 8 40 -1 1 4 1 -1 1 -1 -1 -1\n" +
			"3 20 0 50 8 -1 -1 8 40 -1 1 4 1 -1 1 -1 -1 -1\n", "not in submission order"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.line))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: err = %v, want *ParseError", c.name, err)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseNonMonotonicReportsLine(t *testing.T) {
	in := "; head: 1\n" +
		"1 10 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n" +
		"2 5 0 50 8 -1 -1 8 40 -1 1 4 1 -1 1 -1 -1 -1\n"
	_, err := Parse(strings.NewReader(in))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Fatalf("Line = %d, want 3 (the offending record)", pe.Line)
	}
}

func TestParseMissingSentinelsStillAccepted(t *testing.T) {
	// All-missing record: every -1 is the spec sentinel, not garbage.
	in := "-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || tr.Records[0].RunTime != Missing {
		t.Fatalf("records = %+v", tr.Records)
	}
}

func TestParseSkipsBlankAndLateComments(t *testing.T) {
	in := "\n; head: 1\n1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n; trailing comment\n\n2 10 0 50 8 -1 -1 8 40 -1 1 4 1 -1 1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(tr.Records))
	}
	if _, ok := tr.Header.Get("head"); !ok {
		t.Fatal("header before records lost")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := parseSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Records) != len(tr.Records) {
		t.Fatalf("round trip records = %d, want %d", len(tr2.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != tr2.Records[i] {
			t.Fatalf("record %d changed: %+v vs %+v", i, tr.Records[i], tr2.Records[i])
		}
	}
	if v, ok := tr2.Header.Get("Version"); !ok || v != "2.2" {
		t.Fatalf("header lost on round trip: %q %v", v, ok)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(job, submit, wait, run uint16, procs, req uint8) bool {
		rec := Record{
			JobNumber: int(job), Submit: int64(submit), Wait: int64(wait),
			RunTime: int64(run), AllocProcs: int(procs), AvgCPUTime: Missing,
			UsedMemory: Missing, ReqProcs: int(req), ReqTime: int64(run) * 2,
			ReqMemory: Missing, Status: 1, UserID: 1, GroupID: 1,
			Executable: Missing, QueueNumber: 1, PartitionNum: Missing,
			PrecedingJob: Missing, ThinkTimeAfter: Missing,
		}
		var buf bytes.Buffer
		if err := Write(&buf, &Trace{Records: []Record{rec}}); err != nil {
			return false
		}
		tr, err := Parse(&buf)
		if err != nil || len(tr.Records) != 1 {
			return false
		}
		return tr.Records[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastN(t *testing.T) {
	tr := parseSample(t)
	sub := tr.LastN(2)
	if len(sub.Records) != 2 {
		t.Fatalf("LastN(2) kept %d", len(sub.Records))
	}
	if sub.Records[0].JobNumber != 3 || sub.Records[1].JobNumber != 4 {
		t.Fatalf("LastN kept wrong jobs: %+v", sub.Records)
	}
	if sub.Records[0].Submit != 0 || sub.Records[1].Submit != 5 {
		t.Fatalf("LastN must rebase submit times: %d, %d", sub.Records[0].Submit, sub.Records[1].Submit)
	}
	// Requesting more than available keeps everything.
	all := tr.LastN(100)
	if len(all.Records) != 4 {
		t.Fatalf("LastN(100) kept %d", len(all.Records))
	}
}

func TestLastNDoesNotMutateOriginal(t *testing.T) {
	tr := parseSample(t)
	_ = tr.LastN(2)
	if tr.Records[2].Submit != 25 {
		t.Fatal("LastN mutated the source trace")
	}
}

func TestWindow(t *testing.T) {
	tr := parseSample(t)
	w := tr.Window(10, 30)
	if len(w.Records) != 2 {
		t.Fatalf("Window kept %d, want 2", len(w.Records))
	}
	if w.Records[0].JobNumber != 2 || w.Records[0].Submit != 0 {
		t.Fatalf("Window rebase wrong: %+v", w.Records[0])
	}
}

func TestCompletedOnly(t *testing.T) {
	tr := parseSample(t)
	c := tr.CompletedOnly()
	// Job 3 failed (status 0), job 4 cancelled with zero runtime.
	if len(c.Records) != 2 {
		t.Fatalf("CompletedOnly kept %d, want 2", len(c.Records))
	}
	for _, r := range c.Records {
		if r.RunTime <= 0 {
			t.Fatalf("kept non-running record %+v", r)
		}
	}
}

func TestProcsFallback(t *testing.T) {
	r := Record{AllocProcs: Missing, ReqProcs: 16}
	if r.Procs() != 16 {
		t.Fatalf("Procs() = %d, want requested fallback", r.Procs())
	}
	r.AllocProcs = 8
	if r.Procs() != 8 {
		t.Fatalf("Procs() = %d, want allocated", r.Procs())
	}
}

func TestComputeStats(t *testing.T) {
	tr := parseSample(t)
	s := ComputeStats(tr)
	if s.Jobs != 4 {
		t.Fatalf("Jobs = %d", s.Jobs)
	}
	if math.Abs(s.MeanInterarrival-10) > 1e-9 { // gaps 10,15,5
		t.Fatalf("MeanInterarrival = %v, want 10", s.MeanInterarrival)
	}
	if math.Abs(s.MeanRunTime-112.5) > 1e-9 { // (100+50+300+0)/4
		t.Fatalf("MeanRunTime = %v", s.MeanRunTime)
	}
	if s.MaxProcs != 8 {
		t.Fatalf("MaxProcs = %d", s.MaxProcs)
	}
	if s.Span != 30 {
		t.Fatalf("Span = %d", s.Span)
	}
	// Jobs 1,2,3 have estimates and positive runtime; job 2 underestimated.
	if s.WithEstimate != 3 || s.Underestimated != 1 {
		t.Fatalf("WithEstimate = %d Underestimated = %d", s.WithEstimate, s.Underestimated)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&Trace{})
	if s.Jobs != 0 || s.MeanRunTime != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestHeaderSetReplaces(t *testing.T) {
	var h Header
	h.Set("Version", "2")
	h.Set("version", "2.2")
	if len(h.Fields) != 1 {
		t.Fatalf("Fields = %v, want single replaced entry", h.Fields)
	}
	if v, _ := h.Get("VERSION"); v != "2.2" {
		t.Fatalf("Get = %q", v)
	}
}

func TestNarrativeCommentNotTreatedAsDirective(t *testing.T) {
	in := "; This trace was converted. Fields: are described at the website below\n1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Header.Comments) != 1 {
		t.Fatalf("Comments = %v, want the narrative line preserved", tr.Header.Comments)
	}
}
