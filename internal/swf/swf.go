// Package swf reads and writes the Standard Workload Format (SWF) used by
// Feitelson's Parallel Workloads Archive, the format of the SDSC SP2 trace
// the paper's evaluation replays. Each non-comment line has 18
// whitespace-separated integer fields; missing values are -1.
//
// The archive file itself cannot be redistributed here, so the experiment
// harness generates a statistically calibrated synthetic equivalent (see
// internal/workload); this package lets a user substitute the real
// SDSC-SP2-1998-4.2-cln.swf byte-for-byte when they have it.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Missing is the SWF sentinel for an absent field.
const Missing = -1

// Record is one job line of an SWF trace. Times are in seconds; Submit is
// relative to the trace start.
type Record struct {
	JobNumber      int
	Submit         int64 // seconds since trace start
	Wait           int64 // seconds spent queued
	RunTime        int64 // actual wallclock runtime, seconds
	AllocProcs     int   // processors actually allocated
	AvgCPUTime     int64
	UsedMemory     int64
	ReqProcs       int   // processors requested
	ReqTime        int64 // user runtime estimate, seconds
	ReqMemory      int64
	Status         int
	UserID         int
	GroupID        int
	Executable     int
	QueueNumber    int
	PartitionNum   int
	PrecedingJob   int
	ThinkTimeAfter int64
}

// Status codes defined by the SWF specification.
const (
	StatusFailed    = 0
	StatusCompleted = 1
	StatusPartial   = 2 // partial execution (checkpointed segment)
	StatusLast      = 3 // last segment of a partial job
	StatusCancelled = 4
	StatusUnknown   = Missing
)

// Procs returns the best available processor count: allocated if present,
// otherwise requested.
func (r Record) Procs() int {
	if r.AllocProcs > 0 {
		return r.AllocProcs
	}
	return r.ReqProcs
}

// HasEstimate reports whether the record carries a usable user runtime
// estimate.
func (r Record) HasEstimate() bool { return r.ReqTime > 0 }

// Header carries the `; Key: Value` comment directives from the top of an
// SWF file, preserving order, plus free-form comment lines.
type Header struct {
	Fields   []HeaderField
	Comments []string
}

// HeaderField is a single `; Key: Value` directive.
type HeaderField struct {
	Key   string
	Value string
}

// Get returns the value for key (case-insensitive) and whether it exists.
func (h *Header) Get(key string) (string, bool) {
	for _, f := range h.Fields {
		if strings.EqualFold(f.Key, key) {
			return f.Value, true
		}
	}
	return "", false
}

// Set appends or replaces a directive.
func (h *Header) Set(key, value string) {
	for i, f := range h.Fields {
		if strings.EqualFold(f.Key, key) {
			h.Fields[i].Value = value
			return
		}
	}
	h.Fields = append(h.Fields, HeaderField{Key: key, Value: value})
}

// Trace is a parsed SWF workload.
type Trace struct {
	Header  Header
	Records []Record
}

// ParseError reports a malformed line with its position.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("swf: line %d: %s", e.Line, e.Msg)
}

// Parse reads an SWF trace. Comment lines (starting with ';') before the
// first job line populate the header; later comments are ignored. Malformed
// job lines produce a *ParseError.
func Parse(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	inHeader := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if inHeader {
				parseHeaderLine(&tr.Header, line)
			}
			continue
		}
		inHeader = false
		rec, err := parseRecord(line)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Msg: err.Error()}
		}
		// The SWF specification orders job lines by submission time; a
		// regression there silently corrupts interarrival statistics and
		// any windowing, so it is a parse error, not a quiet re-sort.
		if len(tr.Records) > 0 {
			if prev := tr.Records[len(tr.Records)-1].Submit; rec.Submit < prev {
				return nil, &ParseError{Line: lineNo, Msg: fmt.Sprintf(
					"submit time %d before previous record's %d: trace not in submission order", rec.Submit, prev)}
			}
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: read: %w", err)
	}
	return tr, nil
}

func parseHeaderLine(h *Header, line string) {
	body := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	if body == "" {
		return
	}
	if k, v, ok := strings.Cut(body, ":"); ok {
		key := strings.TrimSpace(k)
		// Directive keys are single words or short phrases; anything with
		// interior sentence punctuation is narrative text.
		if key != "" && !strings.ContainsAny(key, ".;") && len(key) <= 40 {
			h.Set(key, strings.TrimSpace(v))
			return
		}
	}
	h.Comments = append(h.Comments, body)
}

func parseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 18 {
		return Record{}, fmt.Errorf("got %d fields, want 18", len(fields))
	}
	var v [18]int64
	for i, f := range fields {
		n, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return Record{}, fmt.Errorf("field %d %q: not numeric", i+1, f)
		}
		if math.IsNaN(n) || math.IsInf(n, 0) {
			return Record{}, fmt.Errorf("field %d %q: not finite", i+1, f)
		}
		// float64(1<<63) is exact, so these bounds are the precise set of
		// values whose int64 conversion is defined.
		if n < math.MinInt64 || n >= math.MaxInt64 {
			return Record{}, fmt.Errorf("field %d %q: out of range", i+1, f)
		}
		v[i] = int64(n)
	}
	rec := Record{
		JobNumber:      int(v[0]),
		Submit:         v[1],
		Wait:           v[2],
		RunTime:        v[3],
		AllocProcs:     int(v[4]),
		AvgCPUTime:     v[5],
		UsedMemory:     v[6],
		ReqProcs:       int(v[7]),
		ReqTime:        v[8],
		ReqMemory:      v[9],
		Status:         int(v[10]),
		UserID:         int(v[11]),
		GroupID:        int(v[12]),
		Executable:     int(v[13]),
		QueueNumber:    int(v[14]),
		PartitionNum:   int(v[15]),
		PrecedingJob:   int(v[16]),
		ThinkTimeAfter: v[17],
	}
	// -1 is the spec's missing-value sentinel; anything below it in the
	// fields the simulator consumes is garbage, not data.
	switch {
	case rec.Submit < Missing:
		return Record{}, fmt.Errorf("negative submit time %d", rec.Submit)
	case rec.Wait < Missing:
		return Record{}, fmt.Errorf("negative wait time %d", rec.Wait)
	case rec.RunTime < Missing:
		return Record{}, fmt.Errorf("negative runtime %d", rec.RunTime)
	case rec.AllocProcs < Missing:
		return Record{}, fmt.Errorf("negative allocated processor count %d", rec.AllocProcs)
	case rec.ReqProcs < Missing:
		return Record{}, fmt.Errorf("negative requested processor count %d", rec.ReqProcs)
	case rec.ReqTime < Missing:
		return Record{}, fmt.Errorf("negative runtime estimate %d", rec.ReqTime)
	}
	return rec, nil
}

// Write emits the trace in SWF format: header directives, free comments,
// then one job per line.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for _, f := range tr.Header.Fields {
		if _, err := fmt.Fprintf(bw, "; %s: %s\n", f.Key, f.Value); err != nil {
			return err
		}
	}
	for _, c := range tr.Header.Comments {
		if _, err := fmt.Fprintf(bw, "; %s\n", c); err != nil {
			return err
		}
	}
	for _, r := range tr.Records {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d %d\n",
			r.JobNumber, r.Submit, r.Wait, r.RunTime, r.AllocProcs, r.AvgCPUTime,
			r.UsedMemory, r.ReqProcs, r.ReqTime, r.ReqMemory, r.Status, r.UserID,
			r.GroupID, r.Executable, r.QueueNumber, r.PartitionNum, r.PrecedingJob,
			r.ThinkTimeAfter); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LastN returns a copy of the trace restricted to the last n records (by
// submit order), with submit times rebased so the first retained record
// submits at 0. The paper uses the last 3000 jobs of the SDSC SP2 trace.
func (tr *Trace) LastN(n int) *Trace {
	recs := append([]Record(nil), tr.Records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Submit < recs[j].Submit })
	if n < len(recs) {
		recs = recs[len(recs)-n:]
	}
	out := &Trace{Header: tr.Header, Records: recs}
	out.rebase()
	return out
}

// Window returns a copy with only records whose submit time lies in
// [from, to), rebased to start at 0.
func (tr *Trace) Window(from, to int64) *Trace {
	out := &Trace{Header: tr.Header}
	for _, r := range tr.Records {
		if r.Submit >= from && r.Submit < to {
			out.Records = append(out.Records, r)
		}
	}
	out.rebase()
	return out
}

// CompletedOnly returns a copy keeping only records that ran to completion
// with positive runtime and processor count — the usual cleaning step
// before replaying a trace through a simulator.
func (tr *Trace) CompletedOnly() *Trace {
	out := &Trace{Header: tr.Header}
	for _, r := range tr.Records {
		if r.RunTime > 0 && r.Procs() > 0 && (r.Status == StatusCompleted || r.Status == StatusUnknown) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

func (tr *Trace) rebase() {
	if len(tr.Records) == 0 {
		return
	}
	base := tr.Records[0].Submit
	for _, r := range tr.Records[1:] {
		if r.Submit < base {
			base = r.Submit
		}
	}
	for i := range tr.Records {
		tr.Records[i].Submit -= base
	}
}

// Stats summarizes a trace the way the paper's §4 does.
type Stats struct {
	Jobs             int
	MeanInterarrival float64 // seconds
	MeanRunTime      float64 // seconds
	MeanProcs        float64
	MaxProcs         int
	Span             int64 // seconds from first to last submission
	WithEstimate     int   // records carrying a user estimate
	MeanEstimateAcc  float64
	// MeanOverestimate is the mean of estimate/runtime over jobs with both,
	// the paper's headline observation that estimates are "often over
	// estimated".
	MeanOverestimate float64
	Underestimated   int // jobs whose runtime exceeded the estimate
}

// ComputeStats derives summary statistics from the trace.
func ComputeStats(tr *Trace) Stats {
	s := Stats{Jobs: len(tr.Records)}
	if s.Jobs == 0 {
		return s
	}
	var inter, run, procs, over sim2
	prev := tr.Records[0].Submit
	first, last := tr.Records[0].Submit, tr.Records[0].Submit
	for i, r := range tr.Records {
		if i > 0 {
			inter.add(float64(r.Submit - prev))
		}
		prev = r.Submit
		if r.Submit < first {
			first = r.Submit
		}
		if r.Submit > last {
			last = r.Submit
		}
		run.add(float64(r.RunTime))
		procs.add(float64(r.Procs()))
		if r.Procs() > s.MaxProcs {
			s.MaxProcs = r.Procs()
		}
		if r.HasEstimate() && r.RunTime > 0 {
			s.WithEstimate++
			over.add(float64(r.ReqTime) / float64(r.RunTime))
			if r.RunTime > r.ReqTime {
				s.Underestimated++
			}
		}
	}
	s.MeanInterarrival = inter.mean()
	s.MeanRunTime = run.mean()
	s.MeanProcs = procs.mean()
	s.MeanOverestimate = over.mean()
	s.Span = last - first
	return s
}

// sim2 is a tiny local mean accumulator so this package does not depend on
// internal/sim.
type sim2 struct {
	n   int
	sum float64
}

func (a *sim2) add(x float64) { a.n++; a.sum += x }
func (a *sim2) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}
