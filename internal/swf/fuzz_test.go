package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the SWF parser with arbitrary input: it must never
// panic, and anything it accepts must survive a write/parse round trip.
// `go test` runs the seed corpus; `go test -fuzz=FuzzParse ./internal/swf`
// explores further.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("")
	f.Add("; only: header\n")
	f.Add("1 2 3\n")
	f.Add("1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1")
	f.Add("1e9 0 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n; trailing\n")
	f.Add(strings.Repeat("9 ", 17) + "9\n")
	f.Add("1 0 5 NaN 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 +Inf 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 0 5 1e300 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 0 5 -100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 0 5 100 -4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 10 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n1 5 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n")
	f.Add("1 9223372036854775807 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n")
	f.Add("1 0.5 0 1.99 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("Write failed on accepted trace: %v", err)
		}
		tr2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip re-parse failed: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("round trip records %d != %d", len(tr2.Records), len(tr.Records))
		}
		for i := range tr.Records {
			if tr.Records[i] != tr2.Records[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, tr.Records[i], tr2.Records[i])
			}
		}
	})
}

// FuzzParseAuto makes sure the gzip sniffing never panics on arbitrary
// bytes.
func FuzzParseAuto(f *testing.F) {
	f.Add([]byte(sample))
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{0x1f})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		_, _ = ParseAuto(bytes.NewReader(input))
	})
}
