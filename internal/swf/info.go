package swf

import (
	"compress/gzip"
	"io"
	"strconv"
	"strings"
)

// Info is the typed view of the standard SWF header directives. Archive
// files carry many more; these are the ones simulators consume.
type Info struct {
	Version       string
	Computer      string
	Installation  string
	MaxJobs       int
	MaxNodes      int
	MaxProcs      int
	MaxRuntime    int64 // seconds
	UnixStartTime int64
	TimeZone      string
	Note          string
}

// ParseInfo extracts the typed header fields; missing fields stay zero.
func ParseInfo(h *Header) Info {
	var info Info
	get := func(key string) string {
		v, _ := h.Get(key)
		return v
	}
	info.Version = get("Version")
	info.Computer = get("Computer")
	info.Installation = get("Installation")
	info.MaxJobs = atoiPrefix(get("MaxJobs"))
	info.MaxNodes = atoiPrefix(get("MaxNodes"))
	info.MaxProcs = atoiPrefix(get("MaxProcs"))
	info.MaxRuntime = int64(atoiPrefix(get("MaxRuntime")))
	info.UnixStartTime = int64(atoiPrefix(get("UnixStartTime")))
	info.TimeZone = get("TimeZone")
	info.Note = get("Note")
	return info
}

// Procs returns the best available machine size: MaxProcs when recorded,
// otherwise MaxNodes (single-processor nodes, the SP2 case).
func (i Info) Procs() int {
	if i.MaxProcs > 0 {
		return i.MaxProcs
	}
	return i.MaxNodes
}

// atoiPrefix parses the leading integer of a header value, tolerating
// trailing commentary like "128 (66 in batch partition)".
func atoiPrefix(s string) int {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '-' && end == 0 || s[end] >= '0' && s[end] <= '9') {
		end++
	}
	if end == 0 {
		return 0
	}
	n, err := strconv.Atoi(s[:end])
	if err != nil {
		return 0
	}
	return n
}

// gzipMagic is the two-byte gzip file signature.
var gzipMagic = []byte{0x1f, 0x8b}

// ParseAuto parses an SWF stream, transparently decompressing gzip —
// archive traces ship as .swf.gz. The reader need not be seekable.
func ParseAuto(r io.Reader) (*Trace, error) {
	br := &peekReader{r: r}
	head, err := br.peek2()
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		return Parse(zr)
	}
	return Parse(br)
}

// peekReader lets ParseAuto inspect the first two bytes and still hand the
// full stream to the chosen parser.
type peekReader struct {
	r      io.Reader
	buf    []byte
	peeked bool
}

func (p *peekReader) peek2() ([]byte, error) {
	if p.peeked {
		return p.buf, nil
	}
	p.peeked = true
	b := make([]byte, 2)
	n, err := io.ReadFull(p.r, b)
	p.buf = b[:n]
	if err == io.ErrUnexpectedEOF {
		err = io.EOF
	}
	return p.buf, err
}

func (p *peekReader) Read(b []byte) (int, error) {
	if len(p.buf) > 0 {
		n := copy(b, p.buf)
		p.buf = p.buf[n:]
		return n, nil
	}
	return p.r.Read(b)
}
