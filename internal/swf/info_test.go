package swf

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
)

func TestParseInfoTypedFields(t *testing.T) {
	in := `; Version: 2.2
; Computer: IBM SP2
; Installation: SDSC
; MaxJobs: 73496
; MaxNodes: 128 (66 in batch partition)
; MaxRuntime: 129600
; UnixStartTime: 893449922
; TimeZone: US/Pacific
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1
`
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	info := ParseInfo(&tr.Header)
	if info.Version != "2.2" || info.Computer != "IBM SP2" || info.Installation != "SDSC" {
		t.Fatalf("strings wrong: %+v", info)
	}
	if info.MaxJobs != 73496 {
		t.Fatalf("MaxJobs = %d", info.MaxJobs)
	}
	if info.MaxNodes != 128 {
		t.Fatalf("MaxNodes = %d (must tolerate trailing commentary)", info.MaxNodes)
	}
	if info.MaxRuntime != 129600 || info.UnixStartTime != 893449922 {
		t.Fatalf("numerics wrong: %+v", info)
	}
	if info.TimeZone != "US/Pacific" {
		t.Fatalf("TimeZone = %q", info.TimeZone)
	}
	if info.Procs() != 128 {
		t.Fatalf("Procs = %d, want MaxNodes fallback", info.Procs())
	}
}

func TestInfoProcsPreference(t *testing.T) {
	i := Info{MaxNodes: 128, MaxProcs: 1024}
	if i.Procs() != 1024 {
		t.Fatalf("Procs = %d, want MaxProcs when present", i.Procs())
	}
}

func TestParseInfoMissingFieldsZero(t *testing.T) {
	info := ParseInfo(&Header{})
	if info.MaxNodes != 0 || info.Version != "" || info.Procs() != 0 {
		t.Fatalf("empty header info = %+v", info)
	}
}

func TestAtoiPrefix(t *testing.T) {
	cases := map[string]int{
		"128":           128,
		"128 (comment)": 128,
		" 42 ":          42,
		"-1":            -1,
		"abc":           0,
		"":              0,
		"12x34":         12,
	}
	for in, want := range cases {
		if got := atoiPrefix(in); got != want {
			t.Errorf("atoiPrefix(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestParseAutoPlain(t *testing.T) {
	tr, err := ParseAuto(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 4 {
		t.Fatalf("records = %d", len(tr.Records))
	}
}

func TestParseAutoGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(sample)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 4 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	if v, ok := tr.Header.Get("Version"); !ok || v != "2.2" {
		t.Fatalf("header lost through gzip: %q %v", v, ok)
	}
}

func TestParseAutoEmpty(t *testing.T) {
	tr, err := ParseAuto(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 0 {
		t.Fatalf("records = %d", len(tr.Records))
	}
}

func TestParseAutoOneByte(t *testing.T) {
	// A single byte cannot be gzip; must fall through to plain parse and
	// fail as a malformed record line rather than crash.
	if _, err := ParseAuto(strings.NewReader("1")); err == nil {
		t.Fatal("single-byte garbage accepted")
	}
}
