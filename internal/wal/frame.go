package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout, little-endian:
//
//	[4] payload length n (= 8 + len(data))
//	[4] CRC32C over the n payload bytes
//	[8] record index (monotonic, 1-based)
//	[n-8] data
//
// The checksum covers the index and the data but not the length word;
// an implausible length (0..7 or > maxFramePayload) is itself treated
// as corruption. A frame is valid iff the length is plausible, the
// payload is fully present and the CRC matches — anything else is a
// torn tail and recovery truncates at the frame's start offset.
const (
	frameHeaderSize = 8 // length + crc
	frameIndexSize  = 8
	// maxFramePayload bounds one record; anything larger in a length
	// word is garbage, not a record we could have written.
	maxFramePayload = 64 << 20
)

// castagnoli is the CRC32C polynomial table, shared with
// internal/serve's checkpoint checksum so the whole durability layer
// speaks one checksum dialect.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is CRC32C over data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ChecksumAdd extends a running CRC32C with data.
func ChecksumAdd(crc uint32, data []byte) uint32 {
	return crc32.Update(crc, castagnoli, data)
}

// frameSize is the on-disk footprint of a record with len(data) bytes.
func frameSize(dataLen int) int64 {
	return int64(frameHeaderSize + frameIndexSize + dataLen)
}

// appendFrame serializes one record into buf and returns the extended
// slice.
func appendFrame(buf []byte, index uint64, data []byte) []byte {
	n := frameIndexSize + len(data)
	var hdr [frameHeaderSize + frameIndexSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	binary.LittleEndian.PutUint64(hdr[8:16], index)
	crc := ChecksumAdd(Checksum(hdr[8:16]), data)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, data...)
}

// errTornFrame reports a frame that could not be read intact. It is a
// signal, not a failure: recovery handles it by truncation.
var errTornFrame = errors.New("wal: torn frame")

// frameScanner reads frames sequentially, tracking the byte offset of
// the frame boundary it has last fully consumed.
type frameScanner struct {
	r   io.Reader
	off int64 // offset of the next unread frame
}

// next reads one frame. It returns errTornFrame (wrapped with the
// reason) for a short header, an implausible length, a short payload or
// a checksum mismatch, and io.EOF at a clean end of input. scanner.off
// is only advanced past fully valid frames, so after a torn frame it
// holds the truncation point.
func (s *frameScanner) next() (index uint64, data []byte, err error) {
	var hdr [frameHeaderSize]byte
	n, err := io.ReadFull(s.r, hdr[:])
	if err == io.EOF {
		return 0, nil, io.EOF
	}
	if err != nil {
		return 0, nil, fmt.Errorf("%w: short header (%d bytes)", errTornFrame, n)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length < frameIndexSize || length > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", errTornFrame, length)
	}
	payload := make([]byte, length)
	if m, err := io.ReadFull(s.r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: short payload (%d of %d bytes)", errTornFrame, m, length)
	}
	if got := Checksum(payload); got != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", errTornFrame, got, want)
	}
	index = binary.LittleEndian.Uint64(payload[:frameIndexSize])
	s.off += frameSize(int(length) - frameIndexSize)
	return index, payload[frameIndexSize:], nil
}
