package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

// appendAll appends each payload and commits once.
func appendAll(t *testing.T, l *Log, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func recordStrings(rec *Recovery) []string {
	out := make([]string, 0, len(rec.Records))
	for _, r := range rec.Records {
		out = append(out, string(r.Data))
	}
	return out
}

func TestWALAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, Options{Dir: dir})
	if len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered %d records", len(rec.Records))
	}
	appendAll(t, l, "a", "bb", "ccc")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openT(t, Options{Dir: dir})
	defer l2.Close()
	want := []string{"a", "bb", "ccc"}
	got := recordStrings(rec2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i, r := range rec2.Records {
		if r.Index != uint64(i+1) {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
	}
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", rec2.TruncatedBytes)
	}
	// Appending continues the index sequence.
	idx, err := l2.Append([]byte("dddd"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 4 {
		t.Fatalf("next index %d, want 4", idx)
	}
}

// TestWALUncommittedTailIsNotRecovered pins the contract: only
// committed records are guaranteed back. (They may still appear if the
// OS flushed them, so the test routes writes through a buffer the
// "crash" discards: we simply never flush the bufio layer.)
func TestWALUncommittedTailMayVanish(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SyncBytes: -1})
	appendAll(t, l, "durable")
	if _, err := l.Append([]byte("buffered-only")); err != nil {
		t.Fatal(err)
	}
	// Crash without commit: drop the log on the floor (no Close).
	l2, rec := openT(t, Options{Dir: dir})
	defer l2.Close()
	got := recordStrings(rec)
	if len(got) < 1 || got[0] != "durable" {
		t.Fatalf("committed record lost: %v", got)
	}
}

// corruptTail opens the single tail segment and applies f to its bytes.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segmentPrefix) {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) != 1 {
		t.Fatalf("want exactly one segment, have %v", segs)
	}
	return segs[0]
}

// writeLog builds a committed three-record log and returns the segment
// path.
func writeLog(t *testing.T, dir string) string {
	t.Helper()
	l, _ := openT(t, Options{Dir: dir})
	appendAll(t, l, "one", "two", "three")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return tailSegment(t, dir)
}

// TestWALTornTailCorpus drives recovery over every torn-tail shape the
// issue names: a truncated frame, a corrupted checksum, a short header,
// and trailing garbage. Each must recover the intact prefix by
// truncation — reporting the loss — and leave the log appendable.
func TestWALTornTailCorpus(t *testing.T) {
	cases := []struct {
		name string
		// mangle rewrites the segment bytes.
		mangle func(b []byte) []byte
		// want is the surviving prefix.
		want []string
	}{
		{"truncated-frame", func(b []byte) []byte { return b[:len(b)-2] }, []string{"one", "two"}},
		{"bad-crc", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}, []string{"one", "two"}},
		{"short-header", func(b []byte) []byte {
			// Leave 3 bytes of a new frame header after the last record.
			return append(b, 0x09, 0x00, 0x00)
		}, []string{"one", "two", "three"}},
		{"zero-fill", func(b []byte) []byte {
			// A power-loss-style zero tail: length 0 is implausible.
			return append(b, make([]byte, 64)...)
		}, []string{"one", "two", "three"}},
		{"implausible-length", func(b []byte) []byte {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], 1<<30)
			return append(b, hdr[:]...)
		}, []string{"one", "two", "three"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			seg := writeLog(t, dir)
			b, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tc.mangle(append([]byte(nil), b...)), 0o644); err != nil {
				t.Fatal(err)
			}
			l, rec := openT(t, Options{Dir: dir})
			got := recordStrings(rec)
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("recovered %v, want %v", got, tc.want)
			}
			if rec.TruncatedBytes == 0 {
				t.Fatalf("torn tail not reported")
			}
			// The log keeps working: append, commit, reopen clean.
			appendAll(t, l, "after")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, rec2 := openT(t, Options{Dir: dir})
			defer l2.Close()
			if rec2.TruncatedBytes != 0 {
				t.Fatalf("second recovery still torn (%d bytes): truncation was not durable", rec2.TruncatedBytes)
			}
			got2 := recordStrings(rec2)
			if got2[len(got2)-1] != "after" {
				t.Fatalf("post-truncation append lost: %v", got2)
			}
		})
	}
}

// TestWALInteriorHoleRefused pins the loud-failure path: when a file in
// the middle of the sequence lost records that later files continue
// past, recovery must refuse rather than silently replay around the
// hole.
func TestWALInteriorHoleRefused(t *testing.T) {
	dir := t.TempDir()
	// compact.wal holding records 1..2, a segment declaring it starts at
	// index 5: records 3..4 are gone.
	var buf []byte
	buf = appendFrame(buf, 1, []byte("one"))
	buf = appendFrame(buf, 2, []byte("two"))
	if err := os.WriteFile(filepath.Join(dir, compactName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var seg []byte
	seg = appendFrame(seg, 5, []byte("five"))
	if err := os.WriteFile(filepath.Join(dir, segmentName(5)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("holed log accepted")
	} else if !strings.Contains(err.Error(), "holed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestWALFoldOverlapDeduped reconstructs the crash window between
// folding a sealed segment into compact.wal and deleting it: the same
// records exist in both files, and recovery must keep exactly one copy.
func TestWALFoldOverlapDeduped(t *testing.T) {
	dir := t.TempDir()
	var compact []byte
	for i := uint64(1); i <= 5; i++ {
		compact = appendFrame(compact, i, []byte(fmt.Sprintf("r%d", i)))
	}
	if err := os.WriteFile(filepath.Join(dir, compactName), compact, 0o644); err != nil {
		t.Fatal(err)
	}
	var seg []byte
	for i := uint64(4); i <= 8; i++ {
		seg = appendFrame(seg, i, []byte(fmt.Sprintf("r%d", i)))
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(4)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, Options{Dir: dir})
	defer l.Close()
	if len(rec.Records) != 8 {
		t.Fatalf("recovered %d records, want 8: %v", len(rec.Records), recordStrings(rec))
	}
	for i, r := range rec.Records {
		if r.Index != uint64(i+1) || string(r.Data) != fmt.Sprintf("r%d", i+1) {
			t.Fatalf("record %d = (%d, %q)", i, r.Index, r.Data)
		}
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 128})
	var want []string
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("payload-%02d", i)
		want = append(want, p)
		if _, err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.Rotations == 0 || m.Compactions == 0 {
		t.Fatalf("no rotation/compaction at tiny segment size: %+v", m)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Steady state: compact.wal plus exactly one tail segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segCount := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segmentPrefix) {
			segCount++
		}
	}
	if segCount != 1 {
		t.Fatalf("%d tail segments after compaction, want 1", segCount)
	}
	_, rec := openT(t, Options{Dir: dir, SegmentBytes: 128})
	if fmt.Sprint(recordStrings(rec)) != fmt.Sprint(want) {
		t.Fatalf("compacted recovery mismatch:\n got %v\nwant %v", recordStrings(rec), want)
	}
}

// TestWALSealedSegmentsFoldOnOpen pins crash recovery of the compactor
// itself: sealed segments left on disk (NoAutoCompact, or a crash
// before folding) are folded into the compacted prefix at the next
// Open.
func TestWALSealedSegmentsFoldOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 96, NoAutoCompact: true})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, Options{Dir: dir, SegmentBytes: 96})
	if len(rec.Records) != 20 {
		t.Fatalf("recovered %d records, want 20", len(rec.Records))
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	segCount := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), segmentPrefix) {
			segCount++
		}
	}
	if segCount != 1 {
		t.Fatalf("%d tail segments after fold-on-open, want 1", segCount)
	}
}

func TestWALSyncBytesAutoCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SyncBytes: 64})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(bytes.Repeat([]byte("x"), 32)); err != nil {
			t.Fatal(err)
		}
	}
	m := l.Metrics()
	if m.Commits == 0 {
		t.Fatal("SyncBytes threshold never forced a commit")
	}
	if m.DirtyBytes >= 64 {
		t.Fatalf("dirty bytes %d not bounded by SyncBytes", m.DirtyBytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALFsyncFailureSurfaces injects an fsync error at commit: the
// error must surface to the caller (who will refuse to acknowledge),
// and the log must still recover its previously committed prefix.
func TestWALFsyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	var failing bool
	ffs := &FaultFS{OnSync: func(name string) error {
		if failing && strings.Contains(name, segmentPrefix) {
			return fmt.Errorf("injected fsync failure: %w", syscall.EIO)
		}
		return nil
	}}
	l, _ := openT(t, Options{Dir: dir, FS: ffs})
	appendAll(t, l, "safe")
	failing = true
	if _, err := l.Append([]byte("doomed")); err != nil {
		t.Fatalf("buffered append should not fail: %v", err)
	}
	if err := l.Commit(); err == nil {
		t.Fatal("commit swallowed the fsync failure")
	}
	failing = false
	_, rec := openT(t, Options{Dir: dir})
	got := recordStrings(rec)
	if len(got) == 0 || got[0] != "safe" {
		t.Fatalf("committed prefix lost after fsync failure: %v", got)
	}
}

// TestWALShortWriteRecovers injects a short write (ENOSPC mid-frame):
// the commit fails, and recovery truncates the torn frame, keeping the
// intact prefix.
func TestWALShortWriteRecovers(t *testing.T) {
	dir := t.TempDir()
	armed := false
	ffs := &FaultFS{OnWrite: func(name string, p []byte) (int, error, bool) {
		if armed && strings.Contains(name, segmentPrefix) {
			n := len(p) / 2
			return n, fmt.Errorf("injected: %w", syscall.ENOSPC), true
		}
		return 0, nil, false
	}}
	l, _ := openT(t, Options{Dir: dir, FS: ffs})
	appendAll(t, l, "intact-one", "intact-two")
	armed = true
	_, aerr := l.Append([]byte("this-frame-tears-on-disk"))
	cerr := l.Commit()
	if aerr == nil && cerr == nil {
		t.Fatal("short write surfaced no error")
	}
	armed = false
	_, rec := openT(t, Options{Dir: dir})
	got := recordStrings(rec)
	if fmt.Sprint(got) != fmt.Sprint([]string{"intact-one", "intact-two"}) {
		t.Fatalf("recovered %v, want the intact prefix", got)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn frame from the short write not reported")
	}
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWALMetricsAccounting(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	appendAll(t, l, "a", "b")
	m := l.Metrics()
	if m.Appends != 2 || m.Commits != 1 || m.LastIndex != 2 || m.DirtyBytes != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := openT(t, Options{Dir: dir})
	defer l2.Close()
	m2 := l2.Metrics()
	if m2.RecoveredRecords != 2 || m2.LastIndex != 2 {
		t.Fatalf("post-recovery metrics %+v", m2)
	}
}

// TestWALDirectorySyncOnSegmentLifecycle asserts the directory fsync
// barrier actually fires when segment files are created and deleted.
func TestWALDirectorySyncOnSegmentLifecycle(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	l, _ := openT(t, Options{Dir: dir, FS: ffs, SegmentBytes: 64})
	for i := 0; i < 8; i++ {
		if _, err := l.Append(bytes.Repeat([]byte("y"), 24)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	dirSyncs := 0
	for _, p := range ffs.Syncs() {
		if p == dir {
			dirSyncs++
		}
	}
	if dirSyncs < 2 {
		t.Fatalf("only %d directory fsyncs across segment create/rotate/delete", dirSyncs)
	}
}

func TestWALSyncToOverlapsAppends(t *testing.T) {
	dir := t.TempDir()
	// Hold the fsync open until released, so the test can prove Appends
	// proceed while a SyncTo is in flight.
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var gated atomic.Bool
	ffs := &FaultFS{OnSync: func(name string) error {
		if gated.Load() && strings.Contains(name, segmentPrefix) {
			entered <- struct{}{}
			<-gate
		}
		return nil
	}}
	l, _ := openT(t, Options{Dir: dir, FS: ffs})
	defer l.Close()

	idx1, err := l.Append([]byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	gated.Store(true)
	syncDone := make(chan error, 1)
	go func() {
		_, err := l.SyncTo(idx1)
		syncDone <- err
	}()
	<-entered // the fsync is in flight, mutex released

	// Appends must complete while the sync blocks.
	appended := make(chan error, 1)
	go func() {
		_, err := l.Append([]byte("second"))
		appended <- err
	}()
	select {
	case err := <-appended:
		if err != nil {
			t.Fatalf("Append during SyncTo: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked behind an in-flight SyncTo fsync")
	}

	gated.Store(false)
	close(gate)
	if err := <-syncDone; err != nil {
		t.Fatalf("SyncTo: %v", err)
	}
	if got := l.DurableIndex(); got < idx1 {
		t.Fatalf("DurableIndex %d, want >= %d", got, idx1)
	}
}

func TestWALSyncToAlreadyDurableIsNoop(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir})
	defer l.Close()
	idx, err := l.Append([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if synced, err := l.SyncTo(idx); err != nil || !synced {
		t.Fatalf("first SyncTo = (%v, %v), want (true, nil)", synced, err)
	}
	if synced, err := l.SyncTo(idx); err != nil || synced {
		t.Fatalf("second SyncTo = (%v, %v), want (false, nil)", synced, err)
	}
	// A flush by a later SyncTo covers records appended before it, so the
	// next SyncTo for them is also a no-op.
	idx2, _ := l.Append([]byte("y"))
	idx3, _ := l.Append([]byte("z"))
	if synced, err := l.SyncTo(idx3); err != nil || !synced {
		t.Fatalf("SyncTo(%d) = (%v, %v), want (true, nil)", idx3, synced, err)
	}
	if synced, err := l.SyncTo(idx2); err != nil || synced {
		t.Fatalf("SyncTo(%d) after covering sync = (%v, %v), want (false, nil)", idx2, synced, err)
	}
}

func TestWALSyncToFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	ffs := &FaultFS{OnSync: func(name string) error {
		if fail.Load() && strings.Contains(name, segmentPrefix) {
			return fmt.Errorf("injected sync failure")
		}
		return nil
	}}
	l, _ := openT(t, Options{Dir: dir, FS: ffs})
	idx, err := l.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	fail.Store(true)
	if _, err := l.SyncTo(idx); err == nil {
		t.Fatal("SyncTo succeeded through an injected fsync failure")
	}
	// The overlapped sync claimed the dirty bytes before failing: the log
	// must latch rather than pretend a retry could make them durable.
	if _, err := l.Append([]byte("more")); err == nil {
		t.Fatal("Append succeeded on a poisoned log")
	}
	if err := l.Commit(); err == nil {
		t.Fatal("Commit succeeded on a poisoned log")
	}
	if _, err := l.SyncTo(idx); err == nil {
		t.Fatal("SyncTo succeeded on a poisoned log")
	}
}

func TestWALCommitWaitsForInflightSync(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var gated atomic.Bool
	ffs := &FaultFS{OnSync: func(name string) error {
		if gated.Load() && strings.Contains(name, segmentPrefix) {
			gated.Store(false) // gate only the overlapped sync
			entered <- struct{}{}
			<-gate
		}
		return nil
	}}
	// Tiny segments force a rotation — the path that closes the active
	// segment file and must never race the overlapped fsync's handle.
	l, _ := openT(t, Options{Dir: dir, FS: ffs, SegmentBytes: 64})
	defer l.Close()
	idx, err := l.Append([]byte("held"))
	if err != nil {
		t.Fatal(err)
	}
	gated.Store(true)
	syncDone := make(chan error, 1)
	go func() {
		_, err := l.SyncTo(idx)
		syncDone <- err
	}()
	<-entered

	// This append overflows the 64-byte segment and rotates, which seals
	// (fsyncs + closes) the very file the in-flight SyncTo holds; the
	// rotation must block until the sync clears instead of closing it.
	rotated := make(chan error, 1)
	go func() {
		_, err := l.Append([]byte(strings.Repeat("r", 64)))
		rotated <- err
	}()
	select {
	case err := <-rotated:
		t.Fatalf("rotation completed during an in-flight sync (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
		// Blocked, as required.
	}
	close(gate)
	if err := <-syncDone; err != nil {
		t.Fatalf("SyncTo: %v", err)
	}
	if err := <-rotated; err != nil {
		t.Fatalf("Append/rotate after sync released: %v", err)
	}
	if m := l.Metrics(); m.Rotations != 1 {
		t.Fatalf("rotations %d, want 1", m.Rotations)
	}
}

func TestWALSyncToConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, Options{Dir: dir, SegmentBytes: 4 << 10})
	var wg sync.WaitGroup
	var lastIdx atomic.Uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			idx, err := l.Append([]byte(fmt.Sprintf("record-%04d", i)))
			if err != nil {
				t.Errorf("Append: %v", err)
				return
			}
			lastIdx.Store(idx)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := l.SyncTo(lastIdx.Load()); err != nil {
				t.Errorf("SyncTo: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openT(t, Options{Dir: dir})
	if len(rec.Records) != 500 {
		t.Fatalf("recovered %d records, want 500", len(rec.Records))
	}
}
