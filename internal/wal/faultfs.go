package wal

import (
	"os"
	"sync"
)

// FaultFS wraps an FS with injectable failures, so tests can place a
// short write, an fsync error or an ENOSPC at an exact byte offset and
// assert the recovery behavior deterministically. A nil hook passes the
// call through. Hooks receive the file's path, so a test can target the
// temp file, the segment, or the directory handle specifically.
//
// FaultFS lives in the non-test source set on purpose: it is the shared
// fault harness for this package, internal/checkpoint and
// internal/serve's durability tests.
type FaultFS struct {
	Base FS

	// OnOpenFile, when non-nil and returning a non-nil error, fails the
	// open.
	OnOpenFile func(name string, flag int) error
	// OnWrite, when non-nil, intercepts every write. Returning handled
	// false passes the write through untouched; otherwise (n, err) is
	// returned as the write's result and only the first n bytes reach
	// the underlying file (a short write a crash would leave behind).
	OnWrite func(name string, p []byte) (n int, err error, handled bool)
	// OnSync, when non-nil and returning a non-nil error, fails the
	// fsync after skipping the real one.
	OnSync func(name string) error
	// OnRename, when non-nil and returning a non-nil error, fails the
	// rename before it happens.
	OnRename func(oldpath, newpath string) error
	// OnRemove, when non-nil and returning a non-nil error, fails the
	// remove before it happens.
	OnRemove func(name string) error

	mu     sync.Mutex
	syncs  []string
	writes int
}

// Syncs returns the paths that were successfully fsynced, in order
// (directory handles included). Tests use it to assert a durability
// barrier actually happened.
func (f *FaultFS) Syncs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.syncs...)
}

// Writes returns how many write calls reached the FS.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) base() FS {
	if f.Base == nil {
		return OSFS{}
	}
	return f.Base
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if f.OnOpenFile != nil {
		if err := f.OnOpenFile(name, flag); err != nil {
			return nil, err
		}
	}
	file, err := f.base().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.OnRename != nil {
		if err := f.OnRename(oldpath, newpath); err != nil {
			return err
		}
	}
	return f.base().Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if f.OnRemove != nil {
		if err := f.OnRemove(name); err != nil {
			return err
		}
	}
	return f.base().Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.base().ReadDir(name) }
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.base().MkdirAll(path, perm)
}
func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.base().Stat(name) }

// faultFile routes Write and Sync through the parent's hooks.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.writes++
	f.fs.mu.Unlock()
	if f.fs.OnWrite != nil {
		if n, err, handled := f.fs.OnWrite(f.Name(), p); handled {
			if n > 0 {
				// The short prefix a crashed write would have landed.
				if wn, werr := f.File.Write(p[:n]); werr != nil {
					return wn, werr
				}
			}
			return n, err
		}
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.OnSync != nil {
		if err := f.fs.OnSync(f.Name()); err != nil {
			return err
		}
	}
	if err := f.File.Sync(); err != nil {
		return err
	}
	f.fs.mu.Lock()
	f.fs.syncs = append(f.fs.syncs, f.Name())
	f.fs.mu.Unlock()
	return nil
}
