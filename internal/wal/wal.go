// Package wal is a crash-consistent write-ahead op journal: an
// append-only log of opaque records framed with CRC32C checksums,
// fsync-batched via group commit, rotated into bounded segments and
// compacted by folding sealed segments into a single consolidated
// prefix file.
//
// # On-disk layout
//
// A log directory holds at most one consolidated prefix, compact.wal,
// plus numbered tail segments seg-<first-index>.wal. Records carry
// monotonically increasing 1-based indices; the active segment is the
// highest-numbered one, sealed segments are folded into compact.wal
// (and deleted) at rotation, so in steady state the directory is
// exactly {compact.wal, one active segment}. Every file is a sequence
// of CRC32C-framed records (see frame.go); directory mutations are
// made durable with a directory fsync.
//
// # Durability contract
//
// Append buffers; Commit is the durability barrier (flush + fsync).
// A record is guaranteed to survive a crash only after the Commit
// that covers it returns — callers acknowledge work strictly after
// that point. Options.SyncBytes bounds how much appended data may sit
// unsynced before Append forces a commit itself.
//
// # Recovery
//
// Open replays compact.wal then the segments in index order, skipping
// records already seen (a crash between fold and segment delete leaves
// a benign overlap). A torn tail — short header, short payload,
// implausible length or checksum mismatch — truncates that file at the
// last intact frame and is reported in Recovery, never silently
// replayed and never fatal. A hole in the middle of the sequence (an
// interior file lost records but later files continue past them) is
// corruption recovery cannot paper over, and Open refuses it loudly.
package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	compactName   = "compact.wal"
	segmentPrefix = "seg-"
	segmentSuffix = ".wal"
)

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory, created if absent.
	Dir string
	// FS is the filesystem seam; nil means the real one.
	FS FS
	// SegmentBytes bounds one segment file; the active segment rotates
	// when appending would exceed it. Default 4 MiB.
	SegmentBytes int64
	// SyncBytes forces a commit from inside Append once that many bytes
	// sit unsynced, bounding the group a commit covers. Default 256 KiB;
	// negative disables the bound.
	SyncBytes int64
	// NoAutoCompact leaves sealed segments on disk at rotation instead
	// of folding them into compact.wal. Recovery still reads them.
	NoAutoCompact bool
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncBytes == 0 {
		o.SyncBytes = 256 << 10
	}
	return o
}

// Record is one recovered log entry.
type Record struct {
	Index uint64
	Data  []byte
}

// Recovery reports what Open found on disk.
type Recovery struct {
	// Records holds every intact record in index order, deduplicated
	// across the compacted prefix and the segments.
	Records []Record
	// TruncatedBytes counts bytes cut from torn tails, summed over
	// files; TruncatedFiles counts how many files had one.
	TruncatedBytes int64
	TruncatedFiles int
}

// Metrics is a point-in-time snapshot of the log's counters.
type Metrics struct {
	Appends        uint64
	AppendedBytes  uint64
	Commits        uint64
	Rotations      uint64
	Compactions    uint64
	CompactedBytes uint64
	// DirtyBytes is appended-but-not-yet-committed data: the loss
	// window an immediate crash would open for unacknowledged work.
	DirtyBytes int64
	// LastIndex is the index of the most recently appended record.
	LastIndex uint64
	// RecoveredRecords and RecoveryTruncatedBytes restate what Open
	// found, for export alongside the live counters.
	RecoveredRecords       int
	RecoveryTruncatedBytes int64
}

// Log is an open write-ahead log. Append/Commit/SyncTo/Compact/Close
// are goroutine-safe; the intended shape is one appender that groups
// its own commits, optionally with a separate committer goroutine
// overlapping fsyncs via SyncTo.
type Log struct {
	opts Options
	fs   FS
	dir  string

	mu          sync.Mutex
	synced      sync.Cond // broadcast when an overlapped sync finishes
	seg         File
	segW        *bufio.Writer
	segPath     string
	segRecords  int64
	segSize     int64
	compactLast uint64 // highest index folded into compact.wal (0 = none)
	nextIndex   uint64
	dirty       int64
	encBuf      []byte
	m           Metrics
	closed      bool
	// syncing is true while a SyncTo fsync runs outside the mutex. The
	// file handle it holds must stay open, so rotation, Close and
	// synchronous commits wait on synced until it clears.
	syncing bool
	// durableIndex is the highest record index known to be on disk.
	durableIndex uint64
	// err latches a failed overlapped sync: the bytes it had claimed
	// from dirty may or may not be durable, so the log is poisoned and
	// every later Append/Commit/SyncTo returns this error.
	err error
}

// Open loads (or creates) the log in opts.Dir, recovering every intact
// record and truncating torn tails. The returned Recovery is the replay
// input; the Log continues appending after the last recovered index.
func Open(opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	l := &Log{opts: opts, fs: opts.FS, dir: opts.Dir}
	l.synced.L = &l.mu
	if err := l.fs.MkdirAll(l.dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.m.RecoveredRecords = len(rec.Records)
	l.m.RecoveryTruncatedBytes = rec.TruncatedBytes
	l.m.LastIndex = l.nextIndex - 1
	l.durableIndex = l.nextIndex - 1
	return l, rec, nil
}

// segmentFirst parses the first-index a segment file name declares.
func segmentFirst(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	var idx uint64
	if _, err := fmt.Sscanf(hex, "%016x", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, first, segmentSuffix)
}

// scanResult is one file's worth of recovery.
type scanResult struct {
	records   []Record
	validSize int64 // offset of the last intact frame boundary
	tornBytes int64 // bytes past validSize (0 = clean)
}

// scanFile reads every intact frame from path. A torn tail stops the
// scan and is reported, not returned as an error; real I/O errors are.
func (l *Log) scanFile(path string) (scanResult, error) {
	f, err := l.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	st, err := l.fs.Stat(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: %w", err)
	}
	sc := frameScanner{r: bufio.NewReaderSize(f, 256<<10)}
	var res scanResult
	for {
		idx, data, err := sc.next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTornFrame) {
			res.tornBytes = st.Size() - sc.off
			break
		}
		if err != nil {
			return scanResult{}, fmt.Errorf("wal: %s: %w", path, err)
		}
		res.records = append(res.records, Record{Index: idx, Data: data})
	}
	res.validSize = sc.off
	return res, nil
}

// truncateTo physically cuts path at size and syncs the result, making
// the torn-tail removal itself durable.
func (l *Log) truncateTo(path string, size int64) error {
	f, err := l.fs.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// recover scans the directory, truncates torn tails, folds sealed
// segments left behind by a crash, and positions the log for appending.
func (l *Log) recover() (*Recovery, error) {
	entries, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	type segFile struct {
		name  string
		first uint64
	}
	var segs []segFile
	haveCompact := false
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if e.Name() == compactName {
			haveCompact = true
			continue
		}
		if first, ok := segmentFirst(e.Name()); ok {
			segs = append(segs, segFile{name: e.Name(), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })

	rec := &Recovery{}
	last := uint64(0)
	absorb := func(path string, records []Record, declaredFirst uint64) error {
		if declaredFirst > 0 && declaredFirst > last+1 {
			return fmt.Errorf("wal: %s starts at index %d but the log only reaches %d: interior records are missing, refusing to replay a holed log", path, declaredFirst, last)
		}
		for _, r := range records {
			if r.Index <= last {
				continue // overlap from a crash between fold and delete
			}
			if last != 0 && r.Index != last+1 {
				return fmt.Errorf("wal: %s jumps from index %d to %d: interior records are missing, refusing to replay a holed log", path, last, r.Index)
			}
			rec.Records = append(rec.Records, r)
			last = r.Index
		}
		return nil
	}
	scanAndHeal := func(path string) (scanResult, error) {
		res, err := l.scanFile(path)
		if err != nil {
			return res, err
		}
		if res.tornBytes > 0 {
			if err := l.truncateTo(path, res.validSize); err != nil {
				return res, err
			}
			rec.TruncatedBytes += res.tornBytes
			rec.TruncatedFiles++
		}
		return res, nil
	}

	compactPath := filepath.Join(l.dir, compactName)
	if haveCompact {
		res, err := scanAndHeal(compactPath)
		if err != nil {
			return nil, err
		}
		if err := absorb(compactPath, res.records, 0); err != nil {
			return nil, err
		}
		l.compactLast = last
	}
	var lastSeg scanResult
	for i, sf := range segs {
		path := filepath.Join(l.dir, sf.name)
		res, err := scanAndHeal(path)
		if err != nil {
			return nil, err
		}
		if err := absorb(path, res.records, sf.first); err != nil {
			return nil, err
		}
		if i == len(segs)-1 {
			lastSeg = res
		} else if !l.opts.NoAutoCompact {
			// A sealed segment survived a crash before its fold: fold it
			// now so steady state returns to {compact, active segment}.
			if err := l.foldRecordsLocked(res.records); err != nil {
				return nil, err
			}
			if err := l.removeDurably(path); err != nil {
				return nil, err
			}
		}
	}
	l.nextIndex = last + 1

	// Position the active segment: reuse the newest one when it still
	// names its own first record, otherwise start a fresh file.
	if n := len(segs); n > 0 {
		path := filepath.Join(l.dir, segs[n-1].name)
		if len(lastSeg.records) == 0 && segs[n-1].first != l.nextIndex {
			// Every record in it was a duplicate of the compacted prefix
			// (or torn away); its name no longer matches what we would
			// append. Drop it rather than violate the naming invariant.
			if err := l.removeDurably(path); err != nil {
				return nil, err
			}
		} else {
			f, err := l.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			l.seg = f
			l.segPath = path
			l.segW = bufio.NewWriterSize(f, 256<<10)
			l.segRecords = int64(len(lastSeg.records))
			l.segSize = lastSeg.validSize
		}
	}
	if l.seg == nil {
		if err := l.openSegmentLocked(); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

// openSegmentLocked creates the active segment for nextIndex and makes
// its directory entry durable.
func (l *Log) openSegmentLocked() error {
	path := filepath.Join(l.dir, segmentName(l.nextIndex))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := SyncDir(l.fs, l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.seg = f
	l.segPath = path
	l.segW = bufio.NewWriterSize(f, 256<<10)
	l.segRecords = 0
	l.segSize = 0
	return nil
}

// removeDurably deletes a file and fsyncs the directory so the delete
// sticks.
func (l *Log) removeDurably(path string) error {
	if err := l.fs.Remove(path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := SyncDir(l.fs, l.dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

// foldRecordsLocked appends records (already validated) beyond the
// compacted prefix to compact.wal and fsyncs it.
func (l *Log) foldRecordsLocked(records []Record) error {
	var buf []byte
	for _, r := range records {
		if r.Index <= l.compactLast {
			continue
		}
		buf = appendFrame(buf, r.Index, r.Data)
		l.compactLast = r.Index
	}
	if len(buf) == 0 {
		return nil
	}
	path := filepath.Join(l.dir, compactName)
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("wal: fold: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: fold: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: fold: %w", err)
	}
	if err := SyncDir(l.fs, l.dir); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.m.Compactions++
	l.m.CompactedBytes += uint64(len(buf))
	return nil
}

// Append writes one record, rotating the segment first when it is
// full. The record is buffered — not durable — until the next Commit,
// unless SyncBytes forces one here.
func (l *Log) Append(data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: append to closed log")
	}
	if l.err != nil {
		return 0, l.err
	}
	size := frameSize(len(data))
	if l.segRecords > 0 && l.segSize+size > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	idx := l.nextIndex
	l.encBuf = appendFrame(l.encBuf[:0], idx, data)
	if _, err := l.segW.Write(l.encBuf); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	l.nextIndex++
	l.segRecords++
	l.segSize += size
	l.dirty += size
	l.m.Appends++
	l.m.AppendedBytes += uint64(size)
	l.m.LastIndex = idx
	if l.opts.SyncBytes > 0 && l.dirty >= l.opts.SyncBytes {
		if err := l.commitLocked(); err != nil {
			return 0, err
		}
	}
	return idx, nil
}

// Commit is the durability barrier: flush the buffered tail and fsync
// the active segment. Records appended before a successful Commit
// survive a crash; acknowledge work only after it returns.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: commit on closed log")
	}
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	// An overlapped SyncTo fsync may be in flight on the active segment's
	// handle; wait it out so this commit (and the rotation or close that
	// may follow it) never races the handle. After the wait every byte
	// the sync had claimed is either durable or the error has latched.
	for l.syncing {
		l.synced.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.dirty == 0 {
		return nil
	}
	if err := l.segW.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.dirty = 0
	l.durableIndex = l.nextIndex - 1
	l.m.Commits++
	return nil
}

// SyncTo ensures every record with index <= index is durable, returning
// whether this call performed an fsync (false: the range was already on
// disk). Unlike Commit, the fsync itself runs outside the log mutex, so
// concurrent Appends proceed while the disk syncs — the seam a pipelined
// group commit needs. Only one overlapped sync runs at a time; a second
// caller waits. A failed overlapped fsync poisons the log: the error
// latches and every later Append/Commit/SyncTo returns it, because the
// bytes the sync had claimed from the dirty window may or may not have
// reached the disk.
func (l *Log) SyncTo(index uint64) (bool, error) {
	l.mu.Lock()
	for {
		if l.closed {
			l.mu.Unlock()
			return false, errors.New("wal: sync on closed log")
		}
		if l.err != nil {
			err := l.err
			l.mu.Unlock()
			return false, err
		}
		if l.durableIndex >= index {
			l.mu.Unlock()
			return false, nil
		}
		if !l.syncing {
			break
		}
		l.synced.Wait()
	}
	// Flush the buffered tail under the lock: everything appended so far
	// is handed to the OS here and covered by the fsync below, which
	// often makes the next SyncTo a no-op (natural cross-batch grouping).
	if err := l.segW.Flush(); err != nil {
		l.mu.Unlock()
		return false, fmt.Errorf("wal: %w", err)
	}
	target := l.nextIndex - 1
	f := l.seg
	l.dirty = 0
	l.syncing = true
	l.mu.Unlock()

	serr := f.Sync()

	l.mu.Lock()
	l.syncing = false
	l.synced.Broadcast()
	if serr != nil {
		l.err = fmt.Errorf("wal: %w", serr)
		err := l.err
		l.mu.Unlock()
		return true, err
	}
	if target > l.durableIndex {
		l.durableIndex = target
	}
	l.m.Commits++
	l.mu.Unlock()
	return true, nil
}

// DurableIndex reports the highest record index known to be on disk.
func (l *Log) DurableIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableIndex
}

// rotateLocked seals the active segment (committing it), folds it into
// the compacted prefix unless NoAutoCompact, and opens a fresh one.
func (l *Log) rotateLocked() error {
	if err := l.commitLocked(); err != nil {
		return err
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	sealed := l.segPath
	l.seg = nil
	l.m.Rotations++
	if !l.opts.NoAutoCompact {
		res, err := l.scanFile(sealed)
		if err != nil {
			return err
		}
		if res.tornBytes > 0 {
			// We just committed this file; a torn tail here means the
			// device lied about the fsync. Fail loudly.
			return fmt.Errorf("wal: sealed segment %s torn immediately after commit", sealed)
		}
		if err := l.foldRecordsLocked(res.records); err != nil {
			return err
		}
		if err := l.removeDurably(sealed); err != nil {
			return err
		}
	}
	return l.openSegmentLocked()
}

// Compact seals and folds the active segment even if it is not full,
// shrinking the directory to the compacted prefix plus an empty tail.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: compact on closed log")
	}
	if l.segRecords == 0 {
		return nil
	}
	return l.rotateLocked()
}

// Close commits and releases the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.commitLocked()
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.closed = true
	return err
}

// Metrics returns a snapshot of the log's counters.
func (l *Log) Metrics() Metrics {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.m
	m.DirtyBytes = l.dirty
	return m
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }
