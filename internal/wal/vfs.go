package wal

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// FS is the narrow filesystem surface the durability layer writes
// through. Production code uses OSFS; tests inject a FaultFS to make
// short writes, fsync failures and ENOSPC deterministic instead of
// praying for a flaky disk. Every file mutation in this package — and
// in internal/checkpoint, which shares the seam — goes through an FS,
// so a fault injected here is a fault injected everywhere that
// matters.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename.
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// ReadDir is os.ReadDir.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// Stat is os.Stat.
	Stat(name string) (os.FileInfo, error)
}

// File is the open-file surface behind FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync is File.Sync: the durability barrier.
	Sync() error
	// Truncate shrinks the file; recovery uses it to cut a torn tail.
	Truncate(size int64) error
	// Name reports the path the file was opened with.
	Name() string
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                  { return os.Remove(name) }
func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OSFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir fsyncs a directory so a rename, create or delete inside it
// survives power loss — fsyncing the file alone makes the *bytes*
// durable but not the directory entry pointing at them. Filesystems
// that cannot sync a directory handle (reported as EINVAL/ENOTSUP)
// are tolerated: there is nothing stronger available there.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || errors.Is(err, fs.ErrInvalid) {
			return nil
		}
		return err
	}
	return nil
}
