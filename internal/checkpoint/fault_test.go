package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"clustersched/internal/metrics"
	"clustersched/internal/wal"
)

// seedJournal writes a known-good journal through the real filesystem
// and returns its path plus the records it holds.
func seedJournal(t *testing.T, n int) (string, []Record) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := 0; i < n; i++ {
		rec := Record{Key: fmt.Sprintf("key-%04d", i), Label: "fault-test"}
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return path, recs
}

// assertIntact re-opens path through the real filesystem and checks
// every seeded record survived.
func assertIntact(t *testing.T, path string, recs []Record) {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatalf("journal unreadable after injected fault: %v", err)
	}
	if j.Len() != len(recs) {
		t.Fatalf("journal has %d records after injected fault, want %d", j.Len(), len(recs))
	}
	for _, rec := range recs {
		got, ok := j.Lookup(rec.Key)
		if !ok {
			t.Fatalf("record %s lost after injected fault", rec.Key)
		}
		if got.Label != rec.Label {
			t.Fatalf("record %s corrupted: %+v", rec.Key, got)
		}
	}
}

// TestCheckpointFaultFsyncFailure: the temp file's fsync fails. The
// append must error and the previous journal must be byte-for-byte
// intact and readable.
func TestCheckpointFaultFsyncFailure(t *testing.T) {
	path, recs := seedJournal(t, 5)
	ffs := &wal.FaultFS{OnSync: func(name string) error {
		if strings.Contains(name, ".tmp-") {
			return fmt.Errorf("injected: %w", syscall.EIO)
		}
		return nil
	}}
	j, err := OpenFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "doomed"}); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	assertIntact(t, path, recs)
}

// TestCheckpointFaultRenameFailure: the atomic rename fails. Same
// contract: error out, old journal untouched.
func TestCheckpointFaultRenameFailure(t *testing.T) {
	path, recs := seedJournal(t, 4)
	ffs := &wal.FaultFS{OnRename: func(oldpath, newpath string) error {
		return fmt.Errorf("injected: %w", syscall.EACCES)
	}}
	j, err := OpenFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "doomed"}); err == nil {
		t.Fatal("append with failing rename reported success")
	}
	assertIntact(t, path, recs)
	// The failed rewrite's temp file must not confuse a later reader or
	// writer: a retry through a healthy filesystem succeeds.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Key: "retry"}); err != nil {
		t.Fatalf("append after recovered fault: %v", err)
	}
	if _, ok := j2.Lookup("retry"); !ok {
		t.Fatal("retried append missing")
	}
}

// TestCheckpointFaultTornTempWrite: the temp-file write lands only a
// prefix (short write, e.g. ENOSPC). The torn temp file must never
// reach the journal path.
func TestCheckpointFaultTornTempWrite(t *testing.T) {
	path, recs := seedJournal(t, 3)
	ffs := &wal.FaultFS{OnWrite: func(name string, p []byte) (int, error, bool) {
		if strings.Contains(name, ".tmp-") {
			return len(p) / 3, fmt.Errorf("injected: %w", syscall.ENOSPC), true
		}
		return 0, nil, false
	}}
	j, err := OpenFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "doomed"}); err == nil {
		t.Fatal("append with torn temp write reported success")
	}
	assertIntact(t, path, recs)
}

// TestCheckpointDirectoryFsyncAfterRename asserts the power-loss fix:
// after the rename, the parent directory is fsynced so the new journal's
// directory entry is durable, and the barrier ordering is
// temp-file-sync before directory-sync.
func TestCheckpointDirectoryFsyncAfterRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cells.jsonl")
	ffs := &wal.FaultFS{}
	j, err := OpenFS(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "k"}); err != nil {
		t.Fatal(err)
	}
	syncs := ffs.Syncs()
	tmpAt, dirAt := -1, -1
	for i, p := range syncs {
		switch {
		case strings.Contains(p, ".tmp-"):
			tmpAt = i
		case p == dir:
			dirAt = i
		}
	}
	if tmpAt == -1 {
		t.Fatal("temp file never fsynced")
	}
	if dirAt == -1 {
		t.Fatal("parent directory never fsynced after rename")
	}
	if dirAt < tmpAt {
		t.Fatalf("directory fsync (%d) before temp-file fsync (%d)", dirAt, tmpAt)
	}
}

// TestReadFileJSONLLongLine is the >1 MiB regression test for the old
// bufio.Scanner token cap: a record bigger than any fixed buffer must
// round-trip through both the journal and the generic JSONL reader.
func TestReadFileJSONLLongLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.jsonl")
	big := Record{Key: "big", Label: strings.Repeat("x", 2<<20)}
	small := Record{Key: "small", Label: "after the big one"}
	if err := WriteFileJSONL(path, []Record{big, small}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < 2<<20 {
		t.Fatalf("test file only %d bytes; the long line is missing", st.Size())
	}
	recs, err := ReadFileJSONL[Record](path)
	if err != nil {
		t.Fatalf("ReadFileJSONL on a >1MiB line: %v", err)
	}
	if len(recs) != 2 || len(recs[0].Label) != 2<<20 || recs[1].Key != "small" {
		t.Fatalf("long-line roundtrip mangled the records (%d read)", len(recs))
	}
	j, err := Open(path)
	if err != nil {
		t.Fatalf("Journal open on a >1MiB line: %v", err)
	}
	if got, ok := j.Lookup("big"); !ok || len(got.Label) != 2<<20 {
		t.Fatal("journal load truncated the long record")
	}
}

// TestJournalDuplicateKeyOverwritesInPlace pins the O(1) overwrite
// semantics: the record updates, order is preserved, length unchanged.
func TestJournalDuplicateKeyOverwritesInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"a", "b", "c"} {
		if err := j.Append(Record{Key: key, Label: "v1"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(Record{Key: "b", Label: "v2"}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 3 {
		t.Fatalf("Len=%d after duplicate append, want 3", j.Len())
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := j2.Lookup("b"); got.Label != "v2" {
		t.Fatalf("duplicate append did not overwrite: %+v", got)
	}
	recs, err := ReadFileJSONL[Record](path)
	if err != nil {
		t.Fatal(err)
	}
	order := []string{recs[0].Key, recs[1].Key, recs[2].Key}
	if fmt.Sprint(order) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("duplicate append reordered the journal: %v", order)
	}
}

// BenchmarkJournalAppend guards the journal append cost — in particular
// the duplicate-key overwrite, which used to linear-scan the ordered
// slice and is now an O(1) map hit (the file rewrite still dominates,
// by design).
func BenchmarkJournalAppend(b *testing.B) {
	for _, size := range []int{100, 2000} {
		b.Run(fmt.Sprintf("overwrite-into-%d", size), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.jsonl")
			j, err := Open(path)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < size; i++ {
				if err := j.Append(Record{Key: fmt.Sprintf("key-%06d", i)}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := j.Append(Record{Key: fmt.Sprintf("key-%06d", i%size), Label: "hot"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJournalInsertDuplicate isolates the in-memory duplicate
// insert from the file rewrite, so the O(1)-vs-O(n) difference is
// visible directly.
func BenchmarkJournalInsertDuplicate(b *testing.B) {
	j := &Journal{
		byKey: make(map[string]Record),
		byPos: make(map[string]int),
	}
	const size = 10000
	for i := 0; i < size; i++ {
		j.insert(Record{Key: fmt.Sprintf("key-%06d", i)})
	}
	rec := Record{Key: "key-000000", Label: "hot", Summary: metrics.Summary{Submitted: 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.insert(rec)
	}
}
