// Package checkpoint persists completed sweep cells as a JSONL journal so
// an interrupted parameter study resumes instead of restarting.
//
// Each record carries an opaque content-hash key computed by the caller
// from everything that determines the cell's result (base configuration,
// run spec, workload digest). A journal therefore survives config edits
// safely: a changed configuration changes every key, and stale records
// are simply never matched rather than silently reused.
//
// Durability model: the journal is rewritten atomically on every append
// via a temp file in the same directory followed by rename and a
// directory fsync, so the file on disk is always a complete, parseable
// JSONL document and the rename itself survives power loss — a process
// killed mid-append leaves either the previous journal or the new one,
// never a torn line. Sweeps checkpoint tens to a few thousand cells, each
// worth seconds to minutes of simulation, so the O(n) rewrite per append
// is noise against the work it protects.
//
// All file I/O goes through the wal.FS seam, so tests inject fsync
// failures, rename failures and short writes deterministically and
// assert the previous journal is always left intact.
package checkpoint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"clustersched/internal/metrics"
	"clustersched/internal/wal"
)

// Record is one completed sweep cell.
type Record struct {
	// Key is the caller-computed content hash identifying the cell.
	Key string `json:"key"`
	// Label names the enclosing study (e.g. "figure1") for humans
	// reading the journal; it is not part of the identity.
	Label string `json:"label,omitempty"`
	// Summary is the cell's full result.
	Summary metrics.Summary `json:"summary"`
	// MeanSigma carries the chaos sweep's monitor aggregate; 0 for
	// sweeps without one.
	MeanSigma float64 `json:"mean_sigma,omitempty"`
}

// Journal is an append-only set of completed cells backed by a JSONL
// file. It is safe for concurrent use by the sweep worker pool.
type Journal struct {
	mu      sync.Mutex
	fs      wal.FS
	path    string
	byKey   map[string]Record
	byPos   map[string]int // key -> position in ordered
	ordered []Record
}

// Open loads the journal at path, creating an empty one (without touching
// the filesystem yet) if the file does not exist. Duplicate keys keep the
// last record, matching append order.
func Open(path string) (*Journal, error) {
	return OpenFS(wal.OSFS{}, path)
}

// OpenFS is Open through an injected filesystem.
func OpenFS(fsys wal.FS, path string) (*Journal, error) {
	j := &Journal{
		fs:    fsys,
		path:  path,
		byKey: make(map[string]Record),
		byPos: make(map[string]int),
	}
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := j.load(f); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return j, nil
}

func (j *Journal) load(r io.Reader) error {
	return forEachLine(r, func(line int, raw []byte) error {
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Key == "" {
			return fmt.Errorf("line %d: record without key", line)
		}
		j.insert(rec)
		return nil
	})
}

// insert records rec under its key in O(1), overwriting in place when
// the key was already journaled. Callers hold j.mu (or have exclusive
// access during load).
func (j *Journal) insert(rec Record) {
	if pos, seen := j.byPos[rec.Key]; seen {
		j.ordered[pos] = rec
	} else {
		j.byPos[rec.Key] = len(j.ordered)
		j.ordered = append(j.ordered, rec)
	}
	j.byKey[rec.Key] = rec
}

// Path returns the backing file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct completed cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.byKey)
}

// Lookup returns the record for key, if one was journaled.
func (j *Journal) Lookup(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.byKey[key]
	return rec, ok
}

// Append journals one completed cell and atomically rewrites the backing
// file (temp file + rename) so the on-disk journal is valid at every
// instant. Appending a key that is already present overwrites its record.
// A failed rewrite leaves the previous journal untouched on disk, and the
// in-memory set still holds the record, so a later Append retries the
// whole rewrite.
func (j *Journal) Append(rec Record) error {
	if rec.Key == "" {
		return errors.New("checkpoint: record without key")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.insert(rec)
	return j.flushLocked()
}

// flushLocked writes all records to a sibling temp file and renames it
// over the journal path. Callers hold j.mu.
func (j *Journal) flushLocked() error {
	return WriteFileJSONLFS(j.fs, j.path, j.ordered)
}

// createTemp opens an exclusive sibling temp file next to path. It is
// os.CreateTemp reduced to the FS seam: a deterministic counter suffix
// stands in for randomness, looping on collisions.
func createTemp(fsys wal.FS, path string) (wal.File, error) {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.tmp-%d", path, i)
		f, err := fsys.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, fs.ErrExist) {
			return nil, err
		}
	}
}

// WriteFileJSONL atomically replaces path with one JSON line per record:
// the lines go to a sibling temp file which is fsynced and renamed over
// path, and the parent directory is fsynced so the rename itself survives
// power loss. The file on disk is always a complete, parseable JSONL
// document — a process killed mid-write leaves either the old state or
// the new one, never a torn line. This is the durability primitive behind
// both the sweep journal and the admission daemon's drain checkpoint.
func WriteFileJSONL[T any](path string, recs []T) error {
	return WriteFileJSONLFS(wal.OSFS{}, path, recs)
}

// WriteFileJSONLFS is WriteFileJSONL through an injected filesystem.
func WriteFileJSONLFS[T any](fsys wal.FS, path string, recs []T) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	return writeFileAtomic(fsys, path, buf.Bytes())
}

// WriteFileLines atomically replaces path with the given raw lines (each
// written verbatim plus a trailing newline), under the same temp file +
// fsync + rename + directory-fsync discipline as WriteFileJSONL. Callers
// that need byte-exact content — e.g. a checksummed checkpoint — use this
// instead of re-encoding through a JSON encoder.
func WriteFileLines(fsys wal.FS, path string, lines [][]byte) error {
	var buf bytes.Buffer
	for _, ln := range lines {
		buf.Write(ln)
		buf.WriteByte('\n')
	}
	return writeFileAtomic(fsys, path, buf.Bytes())
}

// writeFileAtomic lands data at path via temp file, fsync, rename, and
// directory fsync. On any failure the previous file at path is left
// untouched.
func writeFileAtomic(fsys wal.FS, path string, data []byte) error {
	tmp, err := createTemp(fsys, path)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := wal.SyncDir(fsys, filepath.Dir(path)); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	return nil
}

// forEachLine streams r line by line with no bound on line length,
// calling fn for every non-empty line. Unlike a bufio.Scanner there is
// no token-size cap: a record larger than any fixed buffer still reads
// back intact.
func forEachLine(r io.Reader, fn func(line int, raw []byte) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if len(raw) > 0 {
			line++
			trimmed := bytes.TrimRight(raw, "\r\n")
			if len(trimmed) > 0 {
				if err := fn(line, trimmed); err != nil {
					return err
				}
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// ReadFileJSONL parses a JSONL file written by WriteFileJSONL into one
// record per line. Blank lines are skipped; a missing file is an error
// (callers gate on existence to distinguish "no checkpoint" from a
// corrupt one). Lines of any length are accepted.
func ReadFileJSONL[T any](path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var out []T
	err = forEachLine(f, func(line int, raw []byte) error {
		var rec T
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return out, nil
}

// ReadFileLines returns the non-empty raw lines of path, newline
// stripped, with no bound on line length. Callers that checksum or
// replay byte-exact content read through this.
func ReadFileLines(path string) ([][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	var out [][]byte
	err = forEachLine(f, func(line int, raw []byte) error {
		out = append(out, append([]byte(nil), raw...))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return out, nil
}
