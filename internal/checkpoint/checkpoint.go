// Package checkpoint persists completed sweep cells as a JSONL journal so
// an interrupted parameter study resumes instead of restarting.
//
// Each record carries an opaque content-hash key computed by the caller
// from everything that determines the cell's result (base configuration,
// run spec, workload digest). A journal therefore survives config edits
// safely: a changed configuration changes every key, and stale records
// are simply never matched rather than silently reused.
//
// Durability model: the journal is rewritten atomically on every append
// via a temp file in the same directory followed by rename, so the file
// on disk is always a complete, parseable JSONL document — a process
// killed mid-append leaves either the previous journal or the new one,
// never a torn line. Sweeps checkpoint tens to a few thousand cells, each
// worth seconds to minutes of simulation, so the O(n) rewrite per append
// is noise against the work it protects.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"clustersched/internal/metrics"
)

// Record is one completed sweep cell.
type Record struct {
	// Key is the caller-computed content hash identifying the cell.
	Key string `json:"key"`
	// Label names the enclosing study (e.g. "figure1") for humans
	// reading the journal; it is not part of the identity.
	Label string `json:"label,omitempty"`
	// Summary is the cell's full result.
	Summary metrics.Summary `json:"summary"`
	// MeanSigma carries the chaos sweep's monitor aggregate; 0 for
	// sweeps without one.
	MeanSigma float64 `json:"mean_sigma,omitempty"`
}

// Journal is an append-only set of completed cells backed by a JSONL
// file. It is safe for concurrent use by the sweep worker pool.
type Journal struct {
	mu      sync.Mutex
	path    string
	byKey   map[string]Record
	ordered []Record
}

// Open loads the journal at path, creating an empty one (without touching
// the filesystem yet) if the file does not exist. Duplicate keys keep the
// last record, matching append order.
func Open(path string) (*Journal, error) {
	j := &Journal{path: path, byKey: make(map[string]Record)}
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if err := j.load(f); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return j, nil
}

func (j *Journal) load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		if rec.Key == "" {
			return fmt.Errorf("line %d: record without key", line)
		}
		j.insert(rec)
	}
	return sc.Err()
}

// insert records rec under its key; callers hold j.mu (or have exclusive
// access during load).
func (j *Journal) insert(rec Record) {
	if _, seen := j.byKey[rec.Key]; !seen {
		j.ordered = append(j.ordered, rec)
	} else {
		for i := range j.ordered {
			if j.ordered[i].Key == rec.Key {
				j.ordered[i] = rec
				break
			}
		}
	}
	j.byKey[rec.Key] = rec
}

// Path returns the backing file path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct completed cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.byKey)
}

// Lookup returns the record for key, if one was journaled.
func (j *Journal) Lookup(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.byKey[key]
	return rec, ok
}

// Append journals one completed cell and atomically rewrites the backing
// file (temp file + rename) so the on-disk journal is valid at every
// instant. Appending a key that is already present overwrites its record.
func (j *Journal) Append(rec Record) error {
	if rec.Key == "" {
		return errors.New("checkpoint: record without key")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.insert(rec)
	return j.flushLocked()
}

// flushLocked writes all records to a sibling temp file and renames it
// over the journal path. Callers hold j.mu.
func (j *Journal) flushLocked() error {
	return WriteFileJSONL(j.path, j.ordered)
}

// WriteFileJSONL atomically replaces path with one JSON line per record:
// the lines go to a sibling temp file which is fsynced and renamed over
// path, so the file on disk is always a complete, parseable JSONL
// document — a process killed mid-write leaves either the old state or
// the new one, never a torn line. This is the durability primitive behind
// both the sweep journal and the admission daemon's drain checkpoint.
func WriteFileJSONL[T any](path string, recs []T) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			tmp.Close()
			return fmt.Errorf("checkpoint: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// ReadFileJSONL parses a JSONL file written by WriteFileJSONL into one
// record per line. Blank lines are skipped; a missing file is an error
// (callers gate on existence to distinguish "no checkpoint" from a
// corrupt one).
func ReadFileJSONL[T any](path string) ([]T, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var out []T
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec T
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("checkpoint: %s line %d: %w", path, line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return out, nil
}
