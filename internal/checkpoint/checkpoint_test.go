package checkpoint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"clustersched/internal/metrics"
)

func TestOpenMissingFileIsEmpty(t *testing.T) {
	j, err := Open(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("Len = %d, want 0", j.Len())
	}
	if _, err := os.Stat(j.Path()); err == nil {
		t.Fatal("Open created a file without any Append")
	}
}

func TestAppendLookupRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Record{
		Key:       "abc123",
		Label:     "figure1",
		Summary:   metrics.Summary{Submitted: 10, Met: 7, PctFulfilled: 70, AvgSlowdownMet: 1.25},
		MeanSigma: 0.5,
	}
	if err := j.Append(want); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "def456", Summary: metrics.Summary{Submitted: 3}}); err != nil {
		t.Fatal(err)
	}

	// The in-memory view sees both.
	got, ok := j.Lookup("abc123")
	if !ok || got != want {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}

	// A fresh Open of the file sees the same records in order.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", j2.Len())
	}
	got, ok = j2.Lookup("abc123")
	if !ok || got != want {
		t.Fatalf("reloaded Lookup = %+v, %v", got, ok)
	}
}

func TestAppendOverwritesDuplicateKey(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _ := Open(path)
	if err := j.Append(Record{Key: "k", Summary: metrics.Summary{Met: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Key: "k", Summary: metrics.Summary{Met: 2}}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j.Len())
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := j2.Lookup("k"); rec.Summary.Met != 2 {
		t.Fatalf("reloaded record = %+v, want the overwrite", rec)
	}
}

func TestAppendRejectsEmptyKey(t *testing.T) {
	j, _ := Open(filepath.Join(t.TempDir(), "j.jsonl"))
	if err := j.Append(Record{}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestOpenRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"key\":\"a\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

func TestOpenRejectsKeylessRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	if err := os.WriteFile(path, []byte("{\"label\":\"x\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("keyless record accepted")
	}
}

// TestFileAlwaysValidJSONL hammers the journal from concurrent writers
// and checks the backing file parses completely after every state —
// the atomic temp+rename contract.
func TestFileAlwaysValidJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _ := Open(path)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := strings.Repeat("k", w+1) + string(rune('a'+i))
				if err := j.Append(Record{Key: key, Summary: metrics.Summary{Submitted: i}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		lines++
	}
	if lines != 160 {
		t.Fatalf("journal has %d records, want 160", lines)
	}
	if j.Len() != 160 {
		t.Fatalf("Len = %d, want 160", j.Len())
	}
}

// TestSummaryJSONRoundTripExact pins the property resume determinism
// rests on: a Summary survives the JSON journal byte-exactly, floats
// included.
func TestSummaryJSONRoundTripExact(t *testing.T) {
	in := metrics.Summary{
		Submitted: 3000, Rejected: 123, Completed: 2877, Met: 2500,
		Missed: 377, PctFulfilled: 100 * 2500.0 / 3000.0,
		AvgSlowdownMet: 1.0000000000000002, AcceptanceRate: 0.959,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out metrics.Summary
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if in != out {
		t.Fatalf("round trip drifted:\n in  %+v\n out %+v", in, out)
	}
}

// TestWriteReadFileJSONL pins the generic JSONL state-file primitive the
// admission daemon's drain checkpoint uses: records round-trip in order,
// and a rewrite atomically replaces the previous state.
func TestWriteReadFileJSONL(t *testing.T) {
	type op struct {
		Seq int     `json:"seq"`
		T   float64 `json:"t"`
		Tag string  `json:"tag,omitempty"`
	}
	path := filepath.Join(t.TempDir(), "state.jsonl")
	in := []op{{Seq: 1, T: 0.5}, {Seq: 2, T: 1.25, Tag: "x"}, {Seq: 3, T: 1.25}}
	if err := WriteFileJSONL(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFileJSONL[op](path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d drifted: wrote %+v, read %+v", i, in[i], out[i])
		}
	}
	// Overwrite with fewer records: the file must hold exactly the new set.
	if err := WriteFileJSONL(path, in[:1]); err != nil {
		t.Fatal(err)
	}
	out, err = ReadFileJSONL[op](path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != in[0] {
		t.Fatalf("after rewrite: read %+v, want just %+v", out, in[0])
	}
	if _, err := ReadFileJSONL[op](filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("ReadFileJSONL on a missing file did not error")
	}
}
