package experiment

import (
	"strings"
	"testing"

	"clustersched/internal/workload"
)

// testBase returns a scaled-down configuration (16 nodes, 400 jobs) with
// the same heavy offered load as the full setup, for fast tests.
func testBase() BaseConfig {
	base := DefaultBase()
	base.Nodes = 16
	gen := workload.DefaultGeneratorConfig()
	gen.Jobs = 400
	gen.MaxProcs = 16
	gen.MeanInterarrival = 3000
	gen.MeanRuntime = 5000
	gen.MaxRuntime = 20000
	base.Generator = gen
	return base
}

func TestRunSingleSpecPerPolicy(t *testing.T) {
	base := testBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range AllPolicies {
		s, err := Run(base, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if s.Submitted != 400 {
			t.Fatalf("%v: submitted = %d", pol, s.Submitted)
		}
		if s.Unfinished != 0 {
			t.Fatalf("%v: unfinished = %d", pol, s.Unfinished)
		}
		if s.Met == 0 {
			t.Fatalf("%v: no jobs met", pol)
		}
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	base := testBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Policy: LibraRisk, ArrivalDelayFactor: 0.7, InaccuracyPct: 100, Deadline: base.Deadline}
	a, err := Run(base, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("summaries differ:\n%+v\n%+v", a, b)
	}
}

func TestSweepMatchesSequentialRuns(t *testing.T) {
	base := testBase()
	base.Workers = 4
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := []RunSpec{
		{Policy: EDF, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline},
		{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline},
		{Policy: LibraRisk, ArrivalDelayFactor: 0.5, InaccuracyPct: 100, Deadline: base.Deadline},
	}
	results := Sweep(base, jobs, specs)
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := Run(base, jobs, spec)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Summary != want {
			t.Fatalf("spec %d: parallel %+v != sequential %+v", i, results[i].Summary, want)
		}
		if results[i].Spec != spec {
			t.Fatalf("spec %d reordered", i)
		}
	}
}

func TestSweepSingleWorker(t *testing.T) {
	base := testBase()
	base.Workers = 1
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	results := Sweep(base, jobs, []RunSpec{
		{Policy: EDF, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline},
	})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
}

func TestFigureBuildersShape(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	type tc struct {
		name  string
		build func(BaseConfig) (Figure, error)
		wantX int
	}
	for _, c := range []tc{
		{"figure1", Figure1, len(Fig1Factors)},
		{"figure2", Figure2, len(Fig2Ratios)},
		{"figure3", Figure3, len(Fig3HighUrgencyPct)},
		{"figure4", Figure4, len(Fig4InaccuracyPct)},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			f, err := c.build(base)
			if err != nil {
				t.Fatal(err)
			}
			if f.ID != c.name {
				t.Fatalf("ID = %q", f.ID)
			}
			if len(f.Panels) != 4 {
				t.Fatalf("panels = %d, want 4", len(f.Panels))
			}
			for _, p := range f.Panels {
				if len(p.X) != c.wantX {
					t.Fatalf("panel %q X = %d, want %d", p.Name, len(p.X), c.wantX)
				}
				if len(p.Series) != len(AllPolicies) {
					t.Fatalf("panel %q series = %d", p.Name, len(p.Series))
				}
				for _, s := range p.Series {
					if len(s.Y) != len(p.X) {
						t.Fatalf("panel %q series %q Y = %d", p.Name, s.Name, len(s.Y))
					}
					for _, y := range s.Y {
						if y < 0 {
							t.Fatalf("negative metric %v in %q/%q", y, p.Name, s.Name)
						}
					}
				}
			}
		})
	}
}

func TestBuildWorkloadTable(t *testing.T) {
	base := testBase()
	tbl, err := BuildWorkloadTable(base)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Jobs != base.Generator.Jobs {
		t.Fatalf("Jobs = %d", tbl.Jobs)
	}
	if tbl.PctOverestimates < 50 {
		t.Fatalf("overestimates = %.1f%%, want majority", tbl.PctOverestimates)
	}
	total := tbl.PctExactEstimates + tbl.PctUnderestimates + tbl.PctOverestimates
	if total < 99.9 || total > 100.1 {
		t.Fatalf("estimate fractions sum to %v", total)
	}
	if tbl.MeanOverestimateRatio <= 1 {
		t.Fatalf("MeanOverestimateRatio = %v", tbl.MeanOverestimateRatio)
	}
}

func TestRenderPanelTableAndPlot(t *testing.T) {
	p := Panel{
		Name: "(a) demo", XLabel: "x", YLabel: "y",
		X: []float64{1, 2, 3},
		Series: []Series{
			{Name: "EDF", Y: []float64{10, 20, 30}},
			{Name: "LibraRisk", Y: []float64{30, 20, 10}},
		},
	}
	var sb strings.Builder
	if err := WritePanelTable(&sb, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"(a) demo", "EDF", "LibraRisk", "10.00", "30.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WritePanelPlot(&sb, p, 40, 10); err != nil {
		t.Fatal(err)
	}
	plot := sb.String()
	if !strings.Contains(plot, "E") || !strings.Contains(plot, "R") {
		t.Fatalf("plot missing series marks:\n%s", plot)
	}
	if !strings.Contains(plot, "E=EDF") {
		t.Fatalf("plot missing legend:\n%s", plot)
	}
}

func TestRenderPlotDegenerateInputs(t *testing.T) {
	var sb strings.Builder
	// Empty X, flat series, tiny canvas: must not panic or error.
	if err := WritePanelPlot(&sb, Panel{}, 60, 16); err != nil {
		t.Fatal(err)
	}
	flat := Panel{X: []float64{1, 1}, Series: []Series{{Name: "EDF", Y: []float64{5, 5}}}}
	if err := WritePanelPlot(&sb, flat, 60, 16); err != nil {
		t.Fatal(err)
	}
	if err := WritePanelPlot(&sb, flat, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFigureCSV(t *testing.T) {
	f := Figure{
		ID: "figure9", Title: "demo",
		Panels: []Panel{{
			Name: "(a)", X: []float64{1, 2},
			Series: []Series{{Name: "EDF", Y: []float64{3, 4}}},
		}},
	}
	var sb strings.Builder
	if err := WriteFigureCSV(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "figure,panel,policy,x,y\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "figure9,\"(a)\",EDF,1,3") {
		t.Fatalf("missing row:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", lines)
	}
}

func TestWriteWorkloadTableRenders(t *testing.T) {
	var sb strings.Builder
	if err := WriteWorkloadTable(&sb, WorkloadTable{Jobs: 3000, MeanInterarrivalSec: 2131}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "2131 s") || !strings.Contains(sb.String(), "3000") {
		t.Fatalf("table output wrong:\n%s", sb.String())
	}
}

func TestPolicyKindString(t *testing.T) {
	if EDF.String() != "EDF" || Libra.String() != "Libra" || LibraRisk.String() != "LibraRisk" {
		t.Fatal("PolicyKind strings wrong")
	}
	if PolicyKind(9).String() == "" {
		t.Fatal("unknown kind should print")
	}
}
