package experiment

import (
	"fmt"

	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/predict"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// EstimatorNames are the runtime-estimate sources compared by the
// prediction extension experiment.
var EstimatorNames = []string{"user-estimate", "recent-average", "scaling"}

// RunWithPredictor executes one simulation with the named predictor
// correcting estimates online. The workload must carry user IDs
// (Generator.Users enabled) for history-based predictors to bite.
func RunWithPredictor(base BaseConfig, baseJobs []workload.Job, spec RunSpec, estimator string) (metrics.Summary, error) {
	jobs, err := workload.AssignDeadlines(baseJobs, spec.Deadline)
	if err != nil {
		return metrics.Summary{}, err
	}
	jobs = workload.ScaleArrivals(jobs, spec.ArrivalDelayFactor)

	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	inner, err := buildPolicy(base, spec.Policy, rec)
	if err != nil {
		return metrics.Summary{}, err
	}
	pred, err := predict.New(estimator)
	if err != nil {
		return metrics.Summary{}, err
	}
	pol := predict.Wrap(inner, rec, pred)
	if err := core.RunSimulation(e, pol, rec, jobs, spec.InaccuracyPct); err != nil {
		return metrics.Summary{}, err
	}
	return rec.Summarize(), nil
}

// FigurePrediction is the extension experiment: can system-generated
// estimates (Tsafrir-style recent-average, style-learning scaling) rescue
// Libra, and how much headroom do they leave LibraRisk? Four panels:
// fulfilled % and slowdown for Libra and LibraRisk, one series per
// estimator, swept over estimate inaccuracy, on a user-model workload.
func FigurePrediction(base BaseConfig) (Figure, error) {
	gen := base.Generator
	if gen.Users.Count == 0 {
		gen.Users = workload.DefaultUserModelConfig()
	}
	baseJobs, err := workload.Generate(gen)
	if err != nil {
		return Figure{}, err
	}
	xs := Fig4InaccuracyPct
	policies := []PolicyKind{Libra, LibraRisk}

	type key struct {
		pol PolicyKind
		est string
		xi  int
	}
	results := map[key]metrics.Summary{}
	for _, pol := range policies {
		for _, est := range EstimatorNames {
			for xi, x := range xs {
				spec := RunSpec{Policy: pol, ArrivalDelayFactor: workload.DefaultArrivalDelayFactor, InaccuracyPct: x, Deadline: base.Deadline}
				s, err := RunWithPredictor(base, baseJobs, spec, est)
				if err != nil {
					return Figure{}, err
				}
				results[key{pol, est, xi}] = s
			}
		}
	}

	var panels []Panel
	letters := []string{"(a)", "(b)", "(c)", "(d)"}
	li := 0
	for _, metric := range []struct {
		yLabel string
		value  func(metrics.Summary) float64
	}{
		{"% of jobs with deadlines fulfilled", func(s metrics.Summary) float64 { return s.PctFulfilled }},
		{"average slowdown", func(s metrics.Summary) float64 { return s.AvgSlowdownMet }},
	} {
		for _, pol := range policies {
			p := Panel{
				Name:   fmt.Sprintf("%s %s — %s with predicted estimates", letters[li], metric.yLabel, pol),
				XLabel: "% of inaccuracy",
				YLabel: metric.yLabel,
				X:      xs,
			}
			for _, est := range EstimatorNames {
				ys := make([]float64, len(xs))
				for xi := range xs {
					ys[xi] = metric.value(results[key{pol, est, xi}])
				}
				p.Series = append(p.Series, Series{Name: est, Y: ys})
			}
			panels = append(panels, p)
			li++
		}
	}
	return Figure{
		ID:     "prediction",
		Title:  "Extension: system-generated runtime estimates vs admission control",
		Panels: panels,
	}, nil
}
