package experiment

import (
	"context"
	"fmt"

	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Series is one policy's line in a panel.
type Series struct {
	Name string
	Y    []float64
}

// Panel is one subplot of a figure: a metric against a swept parameter,
// one series per policy.
type Panel struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Figure is one of the paper's result figures.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
}

// Sweep values. The OCR blanks the exact tick labels; these spans are
// reconstructed from the surviving prose (e.g. figure 1's crossover at
// arrival delay factor ≈ 0.3 and its right edge at 1).
var (
	// Fig1Factors sweeps the arrival delay factor: < 1 compresses
	// arrivals (heavier workload).
	Fig1Factors = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	// Fig2Ratios sweeps the deadline high:low ratio.
	Fig2Ratios = []float64{1, 2, 4, 6, 8, 10}
	// Fig3HighUrgencyPct sweeps the share of high urgency jobs.
	Fig3HighUrgencyPct = []float64{0, 20, 40, 60, 80, 100}
	// Fig4InaccuracyPct sweeps runtime-estimate inaccuracy; 0 = accurate,
	// 100 = the trace's actual estimates.
	Fig4InaccuracyPct = []float64{0, 20, 40, 60, 80, 100}
	// Fig4UrgencyLevels are the two urgency mixes figure 4 contrasts.
	Fig4UrgencyLevels = []float64{20, 80}
)

// estimateModes pairs the two estimate regimes every one of figures 1-3
// shows side by side.
var estimateModes = []struct {
	label string
	pct   float64
}{
	{"accurate runtime estimate", 0},
	{"actual runtime estimate from trace", 100},
}

// twoMetricPanels assembles the standard 2×2 figure layout — fulfilled %
// and average slowdown, each under both estimate regimes — from a result
// matrix indexed [mode][policy][xIdx].
func twoMetricPanels(xLabel string, xs []float64, get func(modePct float64, pol PolicyKind, xi int) metrics.Summary) []Panel {
	panels := make([]Panel, 0, 4)
	letters := []string{"(a)", "(b)", "(c)", "(d)"}
	li := 0
	for _, metric := range []struct {
		yLabel string
		value  func(metrics.Summary) float64
	}{
		{"% of jobs with deadlines fulfilled", func(s metrics.Summary) float64 { return s.PctFulfilled }},
		{"average slowdown", func(s metrics.Summary) float64 { return s.AvgSlowdownMet }},
	} {
		for _, mode := range estimateModes {
			p := Panel{
				Name:   fmt.Sprintf("%s %s — %s", letters[li], metric.yLabel, mode.label),
				XLabel: xLabel,
				YLabel: metric.yLabel,
				X:      xs,
			}
			for _, pol := range AllPolicies {
				ys := make([]float64, len(xs))
				for i := range xs {
					ys[i] = metric.value(get(mode.pct, pol, i))
				}
				p.Series = append(p.Series, Series{Name: pol.String(), Y: ys})
			}
			panels = append(panels, p)
			li++
		}
	}
	return panels
}

// sweepGrid runs policy × estimate-mode × x-value and returns a lookup.
// Every spec is stamped with the figure label and the base workload seed
// so a failing cell identifies itself in one line.
func sweepGrid(ctx context.Context, label string, base BaseConfig, baseJobs []workload.Job, xs []float64, modePcts []float64, mkSpec func(modePct, x float64, pol PolicyKind) RunSpec) (func(modePct float64, pol PolicyKind, xi int) metrics.Summary, error) {
	var specs []RunSpec
	type key struct {
		mode float64
		pol  PolicyKind
		xi   int
	}
	index := map[key]int{}
	for _, mode := range modePcts {
		for _, pol := range AllPolicies {
			for xi, x := range xs {
				index[key{mode, pol, xi}] = len(specs)
				s := mkSpec(mode, x, pol)
				s.Label = label
				s.Seed = base.Generator.Seed
				specs = append(specs, s)
			}
		}
	}
	results := SweepContext(ctx, base, baseJobs, specs)
	if err := FirstError(results); err != nil {
		return nil, err
	}
	return func(modePct float64, pol PolicyKind, xi int) metrics.Summary {
		return results[index[key{modePct, pol, xi}]].Summary
	}, nil
}

// Figure1 reproduces "Impact of varying workload": the arrival delay
// factor sweeps from heavy (0.1) to the trace's own intensity (1.0).
func Figure1(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	return Figure1From(base, baseJobs)
}

// Figure1From is Figure1 over a pre-generated base workload, letting
// callers that build several figures share one generation pass.
func Figure1From(base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	return Figure1FromContext(context.Background(), base, baseJobs)
}

// Figure1FromContext is Figure1From under a cancellable context.
func Figure1FromContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	get, err := sweepGrid(ctx, "figure1", base, baseJobs, Fig1Factors, modePcts(), func(mode, x float64, pol PolicyKind) RunSpec {
		return RunSpec{Policy: pol, ArrivalDelayFactor: x, InaccuracyPct: mode, Deadline: base.Deadline}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "figure1",
		Title:  "Impact of varying workload",
		Panels: twoMetricPanels("arrival delay factor", Fig1Factors, get),
	}, nil
}

// Figure2 reproduces "Impact of varying deadline high:low ratio".
func Figure2(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	return Figure2From(base, baseJobs)
}

// Figure2From is Figure2 over a pre-generated base workload, letting
// callers that build several figures share one generation pass.
func Figure2From(base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	return Figure2FromContext(context.Background(), base, baseJobs)
}

// Figure2FromContext is Figure2From under a cancellable context.
func Figure2FromContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	get, err := sweepGrid(ctx, "figure2", base, baseJobs, Fig2Ratios, modePcts(), func(mode, x float64, pol PolicyKind) RunSpec {
		d := base.Deadline
		d.Ratio = x
		return RunSpec{Policy: pol, ArrivalDelayFactor: workload.DefaultArrivalDelayFactor, InaccuracyPct: mode, Deadline: d}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "figure2",
		Title:  "Impact of varying deadline high:low ratio",
		Panels: twoMetricPanels("deadline high:low ratio", Fig2Ratios, get),
	}, nil
}

// Figure3 reproduces "Impact of varying high urgency jobs".
func Figure3(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	return Figure3From(base, baseJobs)
}

// Figure3From is Figure3 over a pre-generated base workload, letting
// callers that build several figures share one generation pass.
func Figure3From(base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	return Figure3FromContext(context.Background(), base, baseJobs)
}

// Figure3FromContext is Figure3From under a cancellable context.
func Figure3FromContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	get, err := sweepGrid(ctx, "figure3", base, baseJobs, Fig3HighUrgencyPct, modePcts(), func(mode, x float64, pol PolicyKind) RunSpec {
		d := base.Deadline
		d.HighUrgencyFraction = x / 100
		return RunSpec{Policy: pol, ArrivalDelayFactor: workload.DefaultArrivalDelayFactor, InaccuracyPct: mode, Deadline: d}
	})
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "figure3",
		Title:  "Impact of varying high urgency jobs",
		Panels: twoMetricPanels("% of high urgency jobs", Fig3HighUrgencyPct, get),
	}, nil
}

// Figure4 reproduces "Impact of varying inaccurate runtime estimates",
// contrasting 20 % and 80 % high urgency mixes.
func Figure4(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	return Figure4From(base, baseJobs)
}

// Figure4From is Figure4 over a pre-generated base workload, letting
// callers that build several figures share one generation pass.
func Figure4From(base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	return Figure4FromContext(context.Background(), base, baseJobs)
}

// Figure4FromContext is Figure4From under a cancellable context.
func Figure4FromContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	get, err := sweepGrid(ctx, "figure4", base, baseJobs, Fig4InaccuracyPct, Fig4UrgencyLevels, func(mode, x float64, pol PolicyKind) RunSpec {
		d := base.Deadline
		d.HighUrgencyFraction = mode / 100
		return RunSpec{Policy: pol, ArrivalDelayFactor: workload.DefaultArrivalDelayFactor, InaccuracyPct: x, Deadline: d}
	})
	if err != nil {
		return Figure{}, err
	}
	panels := make([]Panel, 0, 4)
	letters := []string{"(a)", "(b)", "(c)", "(d)"}
	li := 0
	for _, metric := range []struct {
		yLabel string
		value  func(metrics.Summary) float64
	}{
		{"% of jobs with deadlines fulfilled", func(s metrics.Summary) float64 { return s.PctFulfilled }},
		{"average slowdown", func(s metrics.Summary) float64 { return s.AvgSlowdownMet }},
	} {
		for _, urg := range Fig4UrgencyLevels {
			p := Panel{
				Name:   fmt.Sprintf("%s %s — %.0f%% of high urgency jobs", letters[li], metric.yLabel, urg),
				XLabel: "% of inaccuracy",
				YLabel: metric.yLabel,
				X:      Fig4InaccuracyPct,
			}
			for _, pol := range AllPolicies {
				ys := make([]float64, len(Fig4InaccuracyPct))
				for i := range Fig4InaccuracyPct {
					ys[i] = metric.value(get(urg, pol, i))
				}
				p.Series = append(p.Series, Series{Name: pol.String(), Y: ys})
			}
			panels = append(panels, p)
			li++
		}
	}
	return Figure{
		ID:     "figure4",
		Title:  "Impact of varying inaccurate runtime estimates",
		Panels: panels,
	}, nil
}

func modePcts() []float64 {
	out := make([]float64, len(estimateModes))
	for i, m := range estimateModes {
		out[i] = m.pct
	}
	return out
}

// AllFigures regenerates every figure in order. The base workload is
// generated once and shared across the figure builders; each builder
// still derives its own deadline/arrival variations from it.
func AllFigures(base BaseConfig) ([]Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return nil, err
	}
	return AllFiguresFrom(base, baseJobs)
}

// AllFiguresFrom is AllFigures over a pre-generated base workload.
func AllFiguresFrom(base BaseConfig, baseJobs []workload.Job) ([]Figure, error) {
	return AllFiguresFromContext(context.Background(), base, baseJobs)
}

// AllFiguresFromContext is AllFiguresFrom under a cancellable context.
func AllFiguresFromContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) ([]Figure, error) {
	builders := []func(context.Context, BaseConfig, []workload.Job) (Figure, error){
		Figure1FromContext, Figure2FromContext, Figure3FromContext, Figure4FromContext,
	}
	figs := make([]Figure, 0, len(builders))
	for _, b := range builders {
		f, err := b(ctx, base, baseJobs)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// WorkloadTable summarizes the synthetic trace the way §4 characterizes
// the SDSC SP2 subset, so the substitution can be checked at a glance.
type WorkloadTable struct {
	Jobs                  int
	MeanInterarrivalSec   float64
	MeanRuntimeSec        float64
	MeanProcs             float64
	OfferedUtilization    float64
	PctExactEstimates     float64
	PctUnderestimates     float64
	PctOverestimates      float64
	MeanOverestimateRatio float64
}

// BuildWorkloadTable computes the characteristics table from the base
// workload.
func BuildWorkloadTable(base BaseConfig) (WorkloadTable, error) {
	jobs, err := GenerateBase(base)
	if err != nil {
		return WorkloadTable{}, err
	}
	return BuildWorkloadTableFrom(base, jobs)
}

// BuildWorkloadTableFrom computes the characteristics table from a
// pre-generated base workload, sharing the generation pass with the
// figure builders.
func BuildWorkloadTableFrom(base BaseConfig, jobs []workload.Job) (WorkloadTable, error) {
	var tbl WorkloadTable
	tbl.Jobs = len(jobs)
	var interSum, runSum, procSum, overSum float64
	var exact, under, over int
	for i, j := range jobs {
		if i > 0 {
			interSum += j.Submit - jobs[i-1].Submit
		}
		runSum += j.Runtime
		procSum += float64(j.NumProc)
		switch {
		case j.TraceEstimate == j.Runtime:
			exact++
		case j.TraceEstimate < j.Runtime:
			under++
		default:
			over++
			overSum += j.TraceEstimate / j.Runtime
		}
	}
	n := float64(len(jobs))
	if len(jobs) > 1 {
		tbl.MeanInterarrivalSec = interSum / (n - 1)
	}
	tbl.MeanRuntimeSec = runSum / n
	tbl.MeanProcs = procSum / n
	tbl.OfferedUtilization = workload.Utilization(jobs, base.Nodes)
	tbl.PctExactEstimates = 100 * float64(exact) / n
	tbl.PctUnderestimates = 100 * float64(under) / n
	tbl.PctOverestimates = 100 * float64(over) / n
	if over > 0 {
		tbl.MeanOverestimateRatio = overSum / float64(over)
	}
	return tbl, nil
}
