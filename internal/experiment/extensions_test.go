package experiment

import (
	"testing"
)

func TestRunExtensionPolicies(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 200
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range ExtensionPolicies {
		s, err := Run(base, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if s.Submitted != 200 || s.Unfinished != 0 {
			t.Fatalf("%v: %+v", pol, s)
		}
		if s.Met == 0 {
			t.Fatalf("%v: no jobs met", pol)
		}
	}
}

func TestPolicyKindStringsExtended(t *testing.T) {
	want := map[PolicyKind]string{
		FCFS: "FCFS", BackfillEASY: "EASY", BackfillCons: "Conservative", QoPS: "QoPS",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFigureAllPoliciesShape(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 120
	f, err := FigureAllPolicies(base)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "allpolicies" || len(f.Panels) != 2 {
		t.Fatalf("figure = %q with %d panels", f.ID, len(f.Panels))
	}
	for _, p := range f.Panels {
		if len(p.Series) != len(AllPolicies)+len(ExtensionPolicies) {
			t.Fatalf("panel %q series = %d, want 7", p.Name, len(p.Series))
		}
	}
}

func TestHeteroRatings(t *testing.T) {
	r := HeteroRatings(4, 100, 0.5)
	want := []float64{150, 150, 50, 50}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("HeteroRatings = %v, want %v", r, want)
		}
	}
	// δ = 0 is homogeneous; aggregate capacity constant across δ.
	for _, delta := range HeteroImbalances {
		rs := HeteroRatings(8, 168, delta)
		var sum float64
		for _, v := range rs {
			sum += v
		}
		if sum != 8*168 {
			t.Fatalf("δ=%g aggregate capacity %v, want constant", delta, sum)
		}
	}
}

func TestFigureHeteroShape(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 120
	f, err := FigureHetero(base)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "hetero" || len(f.Panels) != 4 {
		t.Fatalf("figure = %q with %d panels", f.ID, len(f.Panels))
	}
	for _, p := range f.Panels {
		if len(p.X) != len(HeteroImbalances) || len(p.Series) != len(AllPolicies) {
			t.Fatalf("panel %q dims wrong", p.Name)
		}
	}
}

// TestHeteroShapeEDFDegradesLibraRobust locks in the heterogeneity
// finding: with aggregate capacity constant, speed imbalance hurts
// gang-scheduled EDF far more than the proportional-share policies.
func TestHeteroShapeEDFDegradesLibraRobust(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 300
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	at := func(pol PolicyKind, delta float64) float64 {
		b := base
		b.Ratings = HeteroRatings(base.Nodes, 168, delta)
		s, err := Run(b, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline})
		if err != nil {
			t.Fatal(err)
		}
		return s.PctFulfilled
	}
	edfDrop := at(EDF, 0) - at(EDF, 0.75)
	riskDrop := at(LibraRisk, 0) - at(LibraRisk, 0.75)
	if edfDrop <= riskDrop {
		t.Errorf("EDF drop %.1f should exceed LibraRisk drop %.1f under imbalance", edfDrop, riskDrop)
	}
	if edfDrop < 5 {
		t.Errorf("EDF drop %.1f implausibly small; gang pacing not modeled?", edfDrop)
	}
}

func TestRunHeterogeneousBase(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	base.Ratings = HeteroRatings(base.Nodes, 168, 0.5)
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range AllPolicies {
		s, err := Run(base, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if s.Unfinished != 0 || s.Met == 0 {
			t.Fatalf("%v on hetero cluster: %+v", pol, s)
		}
	}
}
