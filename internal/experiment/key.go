package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"math"

	"clustersched/internal/cluster"
	"clustersched/internal/workload"
)

// WorkloadDigest hashes the base workload a sweep runs over: every field
// of every job, in order. Two sweeps share cell results only if they
// share this digest, so a regenerated or edited workload invalidates a
// checkpoint journal instead of poisoning it.
func WorkloadDigest(jobs []workload.Job) string {
	h := sha256.New()
	var buf [8]byte
	wf := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wi(len(jobs))
	for _, j := range jobs {
		wi(j.ID)
		wf(j.Submit)
		wf(j.Runtime)
		wf(j.TraceEstimate)
		wi(j.NumProc)
		wf(j.Deadline)
		wi(int(j.Class))
		wi(j.UserID)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// baseKeyView enumerates exactly the BaseConfig fields that determine a
// cell's result. Supervision knobs (Workers, RunTimeout, Progress,
// Journal), DisableReuse and Shards are deliberately absent: re-running a
// sweep with a different worker count, watchdog, context-reuse setting or
// shard count must still match its journal — the sharded engine is
// byte-identical to the sequential one by construction (asserted by the
// shard differential tests).
type baseKeyView struct {
	Nodes            int
	Rating           float64
	Ratings          []float64
	Cluster          cluster.Config
	Generator        workload.GeneratorConfig
	QoPSSlack        float64
	DisableFastPaths bool
	CheckInvariants  bool
}

// CellKey is the content hash identifying one sweep cell for the
// checkpoint journal: everything result-determining from the base config,
// the full run spec (including its fault processes and deadline model),
// and the digest of the workload the sweep runs over. Any change to any
// of these yields a different key, so resuming against a stale journal
// re-runs rather than reuses.
func CellKey(base BaseConfig, spec RunSpec, workloadDigest string) (string, error) {
	view := struct {
		Base   baseKeyView
		Spec   RunSpec
		Digest string
	}{
		Base: baseKeyView{
			Nodes:            base.Nodes,
			Rating:           base.Rating,
			Ratings:          base.Ratings,
			Cluster:          base.Cluster,
			Generator:        base.Generator,
			QoPSSlack:        base.QoPSSlack,
			DisableFastPaths: base.DisableFastPaths,
			CheckInvariants:  base.CheckInvariants,
		},
		Spec:   spec,
		Digest: workloadDigest,
	}
	b, err := json.Marshal(view)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}
