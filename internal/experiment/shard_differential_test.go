package experiment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"clustersched/internal/fault"
)

// TestShardedRunMatchesSequentialAtPaperScale is the tentpole differential
// for the sharded engine: paper-scale runs (128 nodes, default workload)
// with faults and the invariant checker riding along must produce
// byte-identical summaries at every shard count. The cluster size sits at
// the parallel-admission threshold, so this also proves the fanned-out
// node scan decision-identical to the sequential walk.
func TestShardedRunMatchesSequentialAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale differential sims in -short mode")
	}
	base := DefaultBase()
	base.CheckInvariants = true
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []PolicyKind{Libra, LibraRisk} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			spec := RunSpec{
				Policy:             kind,
				ArrivalDelayFactor: 1,
				InaccuracyPct:      100,
				Deadline:           base.Deadline,
				Faults: fault.Config{
					Seed:           9,
					MTBF:           2e6,
					MTTR:           3600,
					CorrelatedMTBF: 4e6,
					CorrelatedSize: 16,
				},
			}
			ref, err := Run(base, jobs, spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 2, 4, 8} {
				b := base
				b.Shards = k
				got, err := Run(b, jobs, spec)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if got != ref {
					t.Errorf("shards=%d: summaries diverge\nsharded    %+v\nsequential %+v", k, got, ref)
				}
			}
		})
	}
}

// TestShardedFiguresByteIdentical regenerates the full paper figure set
// (reduced workload) on the sharded engine at K = 2, 4, 8 and requires
// exact equality with the sequential figures — every panel, series and
// point, including the monitor-driven ones.
func TestShardedFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration sims in -short mode")
	}
	base := DefaultBase()
	base.Generator.Jobs = 500
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := AllFiguresFrom(base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		k := k
		t.Run(fmt.Sprintf("shards-%d", k), func(t *testing.T) {
			t.Parallel()
			b := base
			b.Shards = k
			figs, err := AllFiguresFrom(b, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(figs, ref) {
				t.Fatal("sharded figures diverge from sequential")
			}
		})
	}
}

// TestShardedChaosSweepByteIdentical runs the fault-grid sweep on the
// sharded engine: crash, straggler and correlated-outage processes all
// active across the failure-rate grid, compared point by point against
// the sequential sweep.
func TestShardedChaosSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep sims in -short mode")
	}
	base := DefaultBase()
	base.Generator.Jobs = 400
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	ref := ChaosSweep(base, jobs)
	b := base
	b.Shards = 4
	got := ChaosSweep(b, jobs)
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("sharded chaos sweep diverges from sequential")
	}
}

// TestShardedCorrelatedOutageAcrossShardBoundary pins the shard-boundary
// fault case: a tiny 8-node cluster split into two shards with outages
// sized to span the node 3 | node 4 boundary. The outage teardown and the
// resubmissions it triggers must land identically however the victims are
// partitioned — and the config is tuned so kills actually occur, or the
// test would pass vacuously.
func TestShardedCorrelatedOutageAcrossShardBoundary(t *testing.T) {
	base := DefaultBase()
	base.Nodes = 8
	base.Generator.Jobs = 300
	base.Generator.MaxProcs = 8
	base.CheckInvariants = true
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{
		Policy:             LibraRisk,
		ArrivalDelayFactor: 1,
		InaccuracyPct:      100,
		Deadline:           base.Deadline,
		Faults: fault.Config{
			Seed:           3,
			CorrelatedMTBF: 4e5,
			CorrelatedSize: 4, // half the cluster: every outage crosses or abuts the boundary
			CorrelatedMTTR: 7200,
		},
	}
	ref, err := Run(base, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Killed == 0 {
		t.Fatal("fault config produced no kills; boundary case not exercised")
	}
	b := base
	b.Shards = 2
	got, err := Run(b, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("summaries diverge across the shard boundary\nsharded    %+v\nsequential %+v", got, ref)
	}
}

// TestShardedSameTimestampCompletions drives many identical jobs so
// completions land at exactly equal times in different shards; the
// deferred-completion merge must reproduce the sequential ordering.
func TestShardedSameTimestampCompletions(t *testing.T) {
	base := DefaultBase()
	base.Nodes = 16
	base.Generator.Jobs = 200
	base.Generator.MaxProcs = 16
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	// Collapse the workload onto a handful of runtimes and arrival
	// instants so same-timestamp completions across shards are common.
	for i := range jobs {
		jobs[i].Submit = float64(int(jobs[i].Submit/5000)) * 5000
		jobs[i].Runtime = float64(1+i%3) * 4000
		jobs[i].TraceEstimate = jobs[i].Runtime
	}
	spec := RunSpec{Policy: Libra, ArrivalDelayFactor: 1, Deadline: base.Deadline}
	ref, err := Run(base, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		b := base
		b.Shards = k
		got, err := Run(b, jobs, spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if got != ref {
			t.Errorf("shards=%d: same-timestamp completions diverge\nsharded    %+v\nsequential %+v", k, got, ref)
		}
	}
}

// TestShardedRunCancellation delivers an already-expired context to a
// sharded run: the barrier loop must surface the cancellation as a clean
// wrapped error rather than deadlock the worker pool or panic mid-phase.
func TestShardedRunCancellation(t *testing.T) {
	base := DefaultBase()
	base.Shards = 4
	base.Generator.Jobs = 200
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunContext(ctx, base, jobs, RunSpec{Policy: LibraRisk, Deadline: base.Deadline})
	if err == nil {
		t.Fatal("canceled sharded run reported success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// TestShardCountBeyondNodesClamps runs with more shards than nodes; the
// count clamps to the node count and the result stays identical.
func TestShardCountBeyondNodesClamps(t *testing.T) {
	base := DefaultBase()
	base.Nodes = 4
	base.Generator.Jobs = 120
	base.Generator.MaxProcs = 4
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Policy: Libra, Deadline: base.Deadline}
	ref, err := Run(base, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	b := base
	b.Shards = 64
	got, err := Run(b, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Errorf("clamped shard count diverges\nsharded    %+v\nsequential %+v", got, ref)
	}
}

// TestShardedEqualKeyArrivalBurstsAtShardEdges pushes the equal-key
// batching path hard: every job arrives at one of a handful of identical
// (time, priority) keys, so the global calendar holds long equal-key
// arrival runs that the barrier loop steps behind a single shard phase,
// while the collapsed runtimes land same-instant completions on nodes
// either side of every shard boundary. The monitor rides along so its
// pool-driven sampling is differentially checked in the same run.
func TestShardedEqualKeyArrivalBurstsAtShardEdges(t *testing.T) {
	base := DefaultBase()
	base.Nodes = 16
	base.Generator.Jobs = 240
	base.Generator.MaxProcs = 4
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	// Three arrival instants (contiguous blocks, keeping the submit order
	// non-decreasing), three runtimes: maximal key collision.
	block := len(jobs)/3 + 1
	for i := range jobs {
		jobs[i].Submit = float64(i/block) * 10000
		jobs[i].Runtime = float64(1+i%3) * 3000
		jobs[i].TraceEstimate = jobs[i].Runtime
		jobs[i].NumProc = 1 + i%2
	}
	spec := RunSpec{Policy: LibraRisk, ArrivalDelayFactor: 1, Deadline: base.Deadline}
	refSum, refMon, err := RunInstrumented(base, jobs, spec, 1800)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8, 16} {
		b := base
		b.Shards = k
		got, mon, err := RunInstrumented(b, jobs, spec, 1800)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if got != refSum {
			t.Errorf("shards=%d: equal-key burst summaries diverge\nsharded    %+v\nsequential %+v", k, got, refSum)
		}
		if !reflect.DeepEqual(mon.Samples(), refMon.Samples()) {
			t.Errorf("shards=%d: monitor samples diverge under equal-key bursts", k)
		}
	}
}
