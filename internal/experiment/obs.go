package experiment

import (
	"fmt"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/obs"
	"clustersched/internal/sim"
)

// obsPolicy is the attachment surface the core policies expose (via their
// embedded obsHooks). Extension policies in internal/sched do not
// implement it and get cluster-level observability only.
type obsPolicy interface {
	SetObs(t obs.Tracer, m *obs.SimMetrics, a *obs.AuditLog)
}

// runTag names one run inside a sweep's merged observability output. The
// cell index disambiguates cells whose Ident collides (the chaos sweep
// varies only the fault seed, which Ident does not render); -1 means a
// standalone run outside any sweep.
func runTag(cell int, spec RunSpec) string {
	if cell < 0 {
		return spec.Ident()
	}
	return fmt.Sprintf("cell%03d %s", cell, spec.Ident())
}

// runTracer unwraps the bundle's buffer as a Tracer, avoiding the
// typed-nil interface trap: a nil *obs.Buffer stored in a non-nil
// interface would pass `!= nil` checks and then crash on Emit.
func runTracer(r *obs.Run) obs.Tracer {
	if r == nil || r.Trace == nil {
		return nil
	}
	return r.Trace
}

// attachObs points the run's components at the bundle's hooks. Called
// once per run, after the (possibly cached) policy and cluster are reset;
// detachObs must run before the context is reused without observability.
func attachObs(r *obs.Run, pol core.Policy, ts *cluster.TimeShared, ss *cluster.SpaceShared) {
	tr := runTracer(r)
	if ts != nil {
		ts.Trace, ts.Metrics = tr, r.Sim
	}
	if ss != nil {
		ss.Trace, ss.Metrics = tr, r.Sim
	}
	if op, ok := pol.(obsPolicy); ok {
		op.SetObs(tr, r.Sim, r.Audit)
	}
}

// detachObs clears every hook attachObs set, so a cached policy context
// reused by a later cell (or a run with observability off) pays only the
// nil checks again.
func detachObs(pol core.Policy, ts *cluster.TimeShared, ss *cluster.SpaceShared) {
	if ts != nil {
		ts.Trace, ts.Metrics = nil, nil
	}
	if ss != nil {
		ss.Trace, ss.Metrics = nil, nil
	}
	if op, ok := pol.(obsPolicy); ok {
		op.SetObs(nil, nil, nil)
	}
}

// finishRunObs records the end-of-run observations that only exist once
// the simulation has drained: per-node utilization (time-shared only —
// the space-shared substrate does not track per-node busy integrals).
func finishRunObs(r *obs.Run, e *sim.Engine, ts *cluster.TimeShared) {
	if r.Sim == nil || ts == nil {
		return
	}
	now := e.Now()
	if now <= 0 {
		return
	}
	for i := 0; i < ts.Len(); i++ {
		r.Sim.NodeUtilization.Observe(ts.Node(i).ServedWork() / now)
	}
}
