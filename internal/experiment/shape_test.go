package experiment

import (
	"testing"

	"clustersched/internal/metrics"
)

// TestPaperShapeHeadline verifies the paper's qualitative findings at full
// scale (128 nodes, 3000 jobs, default deadline model). Absolute numbers
// are not expected to match the authors' testbed; the *ordering* and rough
// factors are what the reproduction must preserve.
func TestPaperShapeHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape test skipped in -short mode")
	}
	base := DefaultBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol PolicyKind, inacc float64) metrics.Summary {
		t.Helper()
		s, err := Run(base, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: inacc, Deadline: base.Deadline})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	edfAcc, libraAcc, riskAcc := run(EDF, 0), run(Libra, 0), run(LibraRisk, 0)
	edfTr, libraTr, riskTr := run(EDF, 100), run(Libra, 100), run(LibraRisk, 100)

	// 1. Accurate estimates: Libra fulfills more jobs than EDF …
	if libraAcc.PctFulfilled <= edfAcc.PctFulfilled {
		t.Errorf("accurate: Libra %.1f%% should beat EDF %.1f%%", libraAcc.PctFulfilled, edfAcc.PctFulfilled)
	}
	// … and LibraRisk fulfills about as many as Libra (within 3 points).
	if diff := riskAcc.PctFulfilled - libraAcc.PctFulfilled; diff < -3 {
		t.Errorf("accurate: LibraRisk %.1f%% should match Libra %.1f%%", riskAcc.PctFulfilled, libraAcc.PctFulfilled)
	}
	// 2. Accurate estimates: neither proportional-share policy misses.
	if libraAcc.Missed != 0 || riskAcc.Missed != 0 || edfAcc.Missed != 0 {
		t.Errorf("accurate estimates must not miss: EDF %d Libra %d LibraRisk %d",
			edfAcc.Missed, libraAcc.Missed, riskAcc.Missed)
	}
	// 3. Trace estimates: LibraRisk fulfills many more jobs than Libra.
	if riskTr.PctFulfilled < libraTr.PctFulfilled+10 {
		t.Errorf("trace: LibraRisk %.1f%% should exceed Libra %.1f%% by >= 10 points",
			riskTr.PctFulfilled, libraTr.PctFulfilled)
	}
	// 4. Trace estimates: Libra is only in EDF's neighbourhood ("barely
	// better"), nowhere near its accurate-estimate advantage.
	if d := libraTr.PctFulfilled - edfTr.PctFulfilled; d > 15 || d < -15 {
		t.Errorf("trace: Libra %.1f%% should be near EDF %.1f%%", libraTr.PctFulfilled, edfTr.PctFulfilled)
	}
	// 5. EDF has the lowest average slowdown in both regimes.
	if edfAcc.AvgSlowdownMet >= libraAcc.AvgSlowdownMet || edfTr.AvgSlowdownMet >= libraTr.AvgSlowdownMet {
		t.Errorf("EDF slowdown should be lowest: acc %.2f vs %.2f, trace %.2f vs %.2f",
			edfAcc.AvgSlowdownMet, libraAcc.AvgSlowdownMet, edfTr.AvgSlowdownMet, libraTr.AvgSlowdownMet)
	}
	// 6. Trace estimates: LibraRisk achieves lower slowdown than Libra.
	if riskTr.AvgSlowdownMet >= libraTr.AvgSlowdownMet {
		t.Errorf("trace: LibraRisk slowdown %.2f should be below Libra %.2f",
			riskTr.AvgSlowdownMet, libraTr.AvgSlowdownMet)
	}
	// 7. Both estimate regimes drain completely.
	for _, s := range []metrics.Summary{edfAcc, libraAcc, riskAcc, edfTr, libraTr, riskTr} {
		if s.Unfinished != 0 {
			t.Errorf("unfinished jobs: %+v", s)
		}
	}
}

// TestPaperShapeHeavyLoadEDFWins checks figure 1's crossover: under the
// heaviest workload (small arrival delay factor) EDF's queue-and-reselect
// advantage lets it fulfill more jobs than Libra's immediate rejection.
// The crossover reproduces robustly under trace estimates (figure 1(b));
// under accurate estimates this simulator's Libra stays marginally ahead
// even at heavy load (see EXPERIMENTS.md for the divergence note), so the
// assertion targets the trace regime.
func TestPaperShapeHeavyLoadEDFWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape test skipped in -short mode")
	}
	base := DefaultBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pol PolicyKind, adf float64) metrics.Summary {
		t.Helper()
		s, err := Run(base, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: adf, InaccuracyPct: 100, Deadline: base.Deadline})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	heavyEDF := run(EDF, 0.1)
	heavyLibra := run(Libra, 0.1)
	if heavyEDF.PctFulfilled <= heavyLibra.PctFulfilled {
		t.Errorf("heavy load: EDF %.1f%% should beat Libra %.1f%%",
			heavyEDF.PctFulfilled, heavyLibra.PctFulfilled)
	}
	// And the advantage disappears as load lightens: Libra pulls back to
	// within a few points or ahead (figure 1(b)'s right edge).
	lightEDF := run(EDF, 1.0)
	lightLibra := run(Libra, 1.0)
	heavyGap := heavyEDF.PctFulfilled - heavyLibra.PctFulfilled
	lightGap := lightEDF.PctFulfilled - lightLibra.PctFulfilled
	if lightGap >= heavyGap {
		t.Errorf("EDF's edge should shrink as load lightens: heavy gap %.1f, light gap %.1f",
			heavyGap, lightGap)
	}
}

// TestPaperShapeInaccuracyDegradesFulfilment checks figure 4's trend: as
// estimate inaccuracy rises, fulfilled percentages fall for every policy,
// with LibraRisk retaining the most.
func TestPaperShapeInaccuracyDegradesFulfilment(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shape test skipped in -short mode")
	}
	base := DefaultBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range AllPolicies {
		at := func(inacc float64) float64 {
			s, err := Run(base, jobs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: inacc, Deadline: base.Deadline})
			if err != nil {
				t.Fatal(err)
			}
			return s.PctFulfilled
		}
		lo, hi := at(0), at(100)
		if hi >= lo {
			t.Errorf("%v: fulfilled %.1f%% at 100%% inaccuracy not below %.1f%% at 0%%", pol, hi, lo)
		}
	}
}
