package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePanelTable renders one panel as an aligned text table: one row per
// swept x value, one column per policy.
func WritePanelTable(w io.Writer, p Panel) error {
	if _, err := fmt.Fprintf(w, "%s\n", p.Name); err != nil {
		return err
	}
	header := []string{p.XLabel}
	for _, s := range p.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i, x := range p.X {
		row := []string{trimFloat(x)}
		for _, s := range p.Series {
			row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[c], cell)
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteFigure renders a whole figure: title, then each panel as a table
// followed by an ASCII plot.
func WriteFigure(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, p := range f.Panels {
		if err := WritePanelTable(w, p); err != nil {
			return err
		}
		if err := WritePanelPlot(w, p, 60, 16); err != nil {
			return err
		}
	}
	return nil
}

// WritePanelPlot renders a crude ASCII line chart of the panel, one mark
// per series ('E' EDF, 'L' Libra, 'R' LibraRisk, digits otherwise).
func WritePanelPlot(w io.Writer, p Panel, width, height int) error {
	if len(p.X) == 0 || width < 8 || height < 4 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if math.IsInf(lo, 1) {
		return nil
	}
	if hi-lo < 1e-12 {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	xlo, xhi := p.X[0], p.X[len(p.X)-1]
	if xhi-xlo < 1e-12 {
		xhi = xlo + 1
	}
	for si, s := range p.Series {
		mark := seriesMark(s.Name, si)
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			col := int(float64(width-1) * (p.X[i] - xlo) / (xhi - xlo))
			row := height - 1 - int(float64(height-1)*(y-lo)/(hi-lo))
			if grid[row][col] == ' ' {
				grid[row][col] = mark
			} else if grid[row][col] != mark {
				grid[row][col] = '*' // collision
			}
		}
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.2f ", hi)
		case height - 1:
			label = fmt.Sprintf("%9.2f ", lo)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(line)); err != nil {
			return err
		}
	}
	legend := make([]string, 0, len(p.Series))
	for si, s := range p.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesMark(s.Name, si), s.Name))
	}
	_, err := fmt.Fprintf(w, "%11s%s  [x: %s %s..%s]\n\n", "", strings.Join(legend, " "),
		p.XLabel, trimFloat(xlo), trimFloat(xhi))
	return err
}

func seriesMark(name string, idx int) byte {
	switch name {
	case "EDF":
		return 'E'
	case "Libra":
		return 'L'
	case "LibraRisk":
		return 'R'
	}
	return byte('1' + idx%9)
}

// WriteFigureCSV emits the figure as tidy CSV: figure, panel, policy, x, y.
func WriteFigureCSV(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintln(w, "figure,panel,policy,x,y"); err != nil {
		return err
	}
	for _, p := range f.Panels {
		for _, s := range p.Series {
			for i, x := range p.X {
				if _, err := fmt.Fprintf(w, "%s,%q,%s,%g,%g\n", f.ID, p.Name, s.Name, x, s.Y[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// figureJSON is the machine-readable shape of a figure; field names are
// chosen for stability, not to mirror the Go structs.
type figureJSON struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Panels []panelJSON `json:"panels"`
}

type panelJSON struct {
	Name   string       `json:"name"`
	XLabel string       `json:"x_label"`
	YLabel string       `json:"y_label"`
	X      []float64    `json:"x"`
	Series []seriesJSON `json:"series"`
}

type seriesJSON struct {
	Name string    `json:"policy"`
	Y    []float64 `json:"y"`
}

// WriteFigureJSON emits the figure as indented JSON for downstream
// plotting tools, mirroring WriteFigureCSV's tidy data with structure.
func WriteFigureJSON(w io.Writer, f Figure) error {
	out := figureJSON{ID: f.ID, Title: f.Title, Panels: make([]panelJSON, 0, len(f.Panels))}
	for _, p := range f.Panels {
		pj := panelJSON{Name: p.Name, XLabel: p.XLabel, YLabel: p.YLabel, X: p.X}
		for _, s := range p.Series {
			pj.Series = append(pj.Series, seriesJSON(s))
		}
		out.Panels = append(out.Panels, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteWorkloadTableJSON emits the §4 workload characteristics as JSON
// (the WorkloadTable struct's exported fields, lower_snake keys).
func WriteWorkloadTableJSON(w io.Writer, t WorkloadTable) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Jobs                  int     `json:"jobs"`
		MeanInterarrivalSec   float64 `json:"mean_interarrival_sec"`
		MeanRuntimeSec        float64 `json:"mean_runtime_sec"`
		MeanProcs             float64 `json:"mean_procs"`
		OfferedUtilization    float64 `json:"offered_utilization"`
		PctExactEstimates     float64 `json:"pct_exact_estimates"`
		PctUnderestimates     float64 `json:"pct_underestimates"`
		PctOverestimates      float64 `json:"pct_overestimates"`
		MeanOverestimateRatio float64 `json:"mean_overestimate_ratio"`
	}(t))
}

// WriteWorkloadTable renders the §4 workload characteristics table with
// the paper's reference values alongside.
func WriteWorkloadTable(w io.Writer, t WorkloadTable) error {
	rows := []struct {
		name  string
		got   string
		paper string
	}{
		{"jobs", fmt.Sprintf("%d", t.Jobs), "3000 (last jobs of SDSC SP2 trace)"},
		{"mean inter-arrival time", fmt.Sprintf("%.0f s", t.MeanInterarrivalSec), "2131 s (35.52 min)"},
		{"mean runtime", fmt.Sprintf("%.0f s", t.MeanRuntimeSec), "~9720 s (2.7 h)"},
		{"mean processors", fmt.Sprintf("%.1f", t.MeanProcs), "17"},
		{"offered utilization", fmt.Sprintf("%.2f", t.OfferedUtilization), "high (trace util. 83.2%)"},
		{"exact estimates", fmt.Sprintf("%.1f %%", t.PctExactEstimates), "minority"},
		{"underestimates", fmt.Sprintf("%.1f %%", t.PctUnderestimates), "minority"},
		{"overestimates", fmt.Sprintf("%.1f %%", t.PctOverestimates), "majority (\"often over estimated\")"},
		{"mean over-estimation ratio", fmt.Sprintf("%.1fx", t.MeanOverestimateRatio), ">> 1"},
	}
	if _, err := fmt.Fprintln(w, "workload characteristics (synthetic vs paper)"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-28s %-12s %s\n", r.name, r.got, r.paper); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.2f", x)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
