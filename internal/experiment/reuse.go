package experiment

import (
	"context"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/obs"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// resettable is the contract a policy must meet to be cached in a run
// scratch: Reset must restore the policy to its just-constructed state
// (minus retained scratch storage) so it can drive a fresh run on a reset
// cluster. EDF, Libra and LibraRisk implement it; the sched extension
// policies do not and are rebuilt from scratch every run.
type resettable interface{ Reset() }

// policyContext is one cached policy with its execution substrate; exactly
// one of ts/ss is non-nil, mirroring buildPolicyClusters.
type policyContext struct {
	pol core.Policy
	ts  *cluster.TimeShared
	ss  *cluster.SpaceShared
}

// runScratch is the reusable state of one sweep worker. After a warm-up
// run per policy kind, running another cell through the scratch performs
// no steady-state heap allocations: the engine recycles events through its
// freelist, the recorder keeps its dense pending table and results
// storage, the cluster re-fills its arenas, and the job slice is
// transformed in place.
//
// A scratch is confined to one worker goroutine; nothing here is
// synchronized.
type runScratch struct {
	engine *sim.Engine
	rec    *metrics.Recorder
	// ctxs caches policies (and their clusters) per kind, so a sweep
	// visiting the same policy many times rebuilds nothing. Only
	// resettable policies are cached.
	ctxs   map[PolicyKind]*policyContext
	jobs   []workload.Job
	driver core.ArrivalDriver
	// shardEngines caches the per-shard engines of sharded runs
	// (base.Shards > 1) so their event freelists and queue storage survive
	// across cells just like the main engine's.
	shardEngines []*sim.Engine
	// dirty marks the scratch as possibly corrupt: it is set before every
	// attempt that uses the scratch and cleared only when the attempt
	// returns (even with an error — every component's Reset recovers from
	// mid-run state). A panic skips the clear, so the supervised retry and
	// every later cell on this worker fall back to the fresh-build path
	// rather than trust half-mutated internals.
	dirty bool
}

func newRunScratch() *runScratch {
	return &runScratch{
		engine: sim.NewEngine(),
		rec:    metrics.NewRecorder(),
		ctxs:   make(map[PolicyKind]*policyContext),
	}
}

// acquire returns the scratch for one run attempt, or nil (meaning "build
// fresh") if the scratch is nil or was dirtied by an earlier panic. It is
// nil-safe so callers can thread a missing scratch without branching.
func (sc *runScratch) acquire() *runScratch {
	if sc == nil || sc.dirty {
		return nil
	}
	sc.dirty = true
	return sc
}

// release marks a successfully *returned-from* attempt (panic never
// reaches it); nil-safe, matching acquire.
func (sc *runScratch) release() {
	if sc != nil {
		sc.dirty = false
	}
}

// runInstrumented is the body shared by RunInstrumentedContext (sc == nil:
// build everything fresh) and the sweep workers (sc != nil: reuse the
// worker's scratch). The two paths produce identical summaries by
// construction — every Reset restores exact constructor state and every
// in-place transform draws the same random sequence as its allocating
// counterpart — and the differential tests in reuse_test.go hold them to
// byte-identical figures at paper scale.
// cell is the sweep cell index used to tag observability output (-1 for
// standalone runs); observability setup runs only when base.Obs is set,
// so runs with it off execute the pre-observability instruction stream.
func runInstrumented(ctx context.Context, base BaseConfig, baseJobs []workload.Job, spec RunSpec, monitorInterval float64, sc *runScratch, cell int) (metrics.Summary, *core.Monitor, error) {
	var (
		jobs []workload.Job
		e    *sim.Engine
		rec  *metrics.Recorder
		drv  *core.ArrivalDriver
	)
	if sc != nil {
		if cap(sc.jobs) < len(baseJobs) {
			sc.jobs = make([]workload.Job, len(baseJobs))
		}
		jobs = sc.jobs[:len(baseJobs)]
		if err := workload.AssignDeadlinesInto(jobs, baseJobs, spec.Deadline); err != nil {
			return metrics.Summary{}, nil, err
		}
		workload.ScaleArrivalsInPlace(jobs, spec.ArrivalDelayFactor)
		// Engine first: Reset invalidates every outstanding *Event, which
		// is what lets the cluster Resets below drop their event
		// references without cancelling them one by one.
		e = sc.engine
		e.Reset()
		rec = sc.rec
		rec.Reset()
		drv = &sc.driver
	} else {
		j, err := workload.AssignDeadlines(baseJobs, spec.Deadline)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		jobs = workload.ScaleArrivals(j, spec.ArrivalDelayFactor)
		e = sim.NewEngine()
		rec = metrics.NewRecorder()
		drv = new(core.ArrivalDriver)
	}

	var (
		pol core.Policy
		ts  *cluster.TimeShared
		ss  *cluster.SpaceShared
	)
	if pc := cachedPolicy(sc, spec.Policy); pc != nil {
		pol, ts, ss = pc.pol, pc.ts, pc.ss
		if ts != nil {
			ts.Reset()
		}
		if ss != nil {
			ss.Reset()
		}
		pol.(resettable).Reset()
	} else {
		var err error
		pol, ts, ss, err = buildPolicyClusters(base, spec.Policy, rec)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		if _, ok := pol.(resettable); ok && sc != nil {
			sc.ctxs[spec.Policy] = &policyContext{pol: pol, ts: ts, ss: ss}
		}
	}

	// Sharded execution: attach per-shard engines and the phase worker
	// pool for time-shared policies. Space-shared policies (EDF and the
	// extension schedulers) stay sequential — every completion there is a
	// dispatch decision, i.e. a barrier per event.
	shardCount := 0
	if base.Shards > 1 && ts != nil {
		shardCount = base.Shards
		if shardCount > ts.Len() {
			shardCount = ts.Len()
		}
	}
	var pool *sim.ShardPool
	if shardCount > 1 {
		if err := ts.AttachShards(shardEnginesFor(sc, shardCount)); err != nil {
			return metrics.Summary{}, nil, err
		}
		defer ts.DetachShards()
		pool = sim.NewShardPool(shardCount)
		defer pool.Close()
		if ap, ok := pol.(core.AdmitParallel); ok {
			ap.SetAdmitPool(pool)
			defer ap.SetAdmitPool(nil)
		}
	}

	var orun *obs.Run
	if base.Obs != nil {
		orun = base.Obs.NewRun(runTag(cell, spec), spec.Policy.String())
		attachObs(orun, pol, ts, ss)
		// Detach unconditionally so a cached policy context never carries
		// hooks for a bundle that was merged (or discarded on error).
		defer detachObs(pol, ts, ss)
	}

	var chk *sim.InvariantChecker
	if base.CheckInvariants {
		chk = core.InstallInvariantChecker(e, rec, ts, ss)
	}
	if spec.Faults.Enabled() {
		if err := installFaults(e, spec.Faults, spec.Policy, ts, ss, jobs, runTracer(orun)); err != nil {
			return metrics.Summary{}, nil, err
		}
	}
	var mon *core.Monitor
	if monitorInterval > 0 && ts != nil {
		var err error
		mon, err = core.NewMonitor(ts, monitorInterval)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		if shardCount > 1 {
			mon.PendingExtra = ts.ShardsPending
			mon.Pool = pool
		}
		mon.Start(e)
	}
	var runErr error
	if shardCount > 1 {
		runErr = core.RunSimulationSharded(ctx, e, ts, pool, pol, rec, jobs, spec.InaccuracyPct, drv)
	} else {
		runErr = core.RunSimulationReusing(ctx, e, pol, rec, jobs, spec.InaccuracyPct, drv)
	}
	if runErr != nil {
		return metrics.Summary{}, mon, runErr
	}
	if chk != nil {
		if err := chk.Err(); err != nil {
			return metrics.Summary{}, mon, err
		}
	}
	if orun != nil {
		// Only successful runs merge; a failed attempt's partial bundle is
		// simply dropped, so the sweep output never mixes in aborted runs.
		finishRunObs(orun, e, ts)
		if err := base.Obs.Finish(orun); err != nil {
			return metrics.Summary{}, mon, err
		}
	}
	return rec.Summarize(), mon, nil
}

// shardEnginesFor returns k reset shard engines, drawing them from the
// scratch's cache when available so sharded sweep cells reuse queue
// storage and event freelists run over run.
func shardEnginesFor(sc *runScratch, k int) []*sim.Engine {
	if sc == nil {
		engines := make([]*sim.Engine, k)
		for i := range engines {
			engines[i] = sim.NewEngine()
		}
		return engines
	}
	for len(sc.shardEngines) < k {
		sc.shardEngines = append(sc.shardEngines, sim.NewEngine())
	}
	engines := sc.shardEngines[:k]
	for _, se := range engines {
		se.Reset()
	}
	return engines
}

// cachedPolicy looks up the scratch's policy cache; nil-safe.
func cachedPolicy(sc *runScratch, kind PolicyKind) *policyContext {
	if sc == nil {
		return nil
	}
	return sc.ctxs[kind]
}

// newScratchPool returns the per-worker scratch slots for a sweep, or nil
// when reuse is disabled. Slots are filled lazily by scratchFor so a
// worker that only ever hits the checkpoint journal builds nothing.
func newScratchPool(base BaseConfig, workers int) []*runScratch {
	if base.DisableReuse {
		return nil
	}
	return make([]*runScratch, workers)
}

// scratchFor returns worker w's scratch, creating it on first use. Each
// slot is touched only by its own worker goroutine.
func scratchFor(pool []*runScratch, w int) *runScratch {
	if pool == nil {
		return nil
	}
	if pool[w] == nil {
		pool[w] = newRunScratch()
	}
	return pool[w]
}
