package experiment

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func demoFigure() Figure {
	return Figure{
		ID:    "figureX",
		Title: "demo <figure> & test",
		Panels: []Panel{
			{
				Name: "(a) metric", XLabel: "x axis", YLabel: "y axis",
				X: []float64{1, 2, 3},
				Series: []Series{
					{Name: "EDF", Y: []float64{10, 20, 30}},
					{Name: "LibraRisk", Y: []float64{30, 25, 12}},
				},
			},
			{
				Name: "(b) other", XLabel: "x", YLabel: "y",
				X: []float64{1, 2, 3},
				Series: []Series{
					{Name: "custom-series", Y: []float64{1, 1, 1}},
				},
			},
		},
	}
}

func TestWriteFigureSVGWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureSVG(&sb, demoFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatalf("missing svg root:\n%s", out[:min(len(out), 200)])
	}
	// The output must be well-formed XML (escaping of the <figure> title
	// included).
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, want := range []string{"polyline", "EDF", "LibraRisk", "x axis", "demo &lt;figure&gt; &amp; test"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
}

func TestWriteFigureSVGColours(t *testing.T) {
	var sb strings.Builder
	if err := WriteFigureSVG(&sb, demoFigure()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, svgPalette["EDF"]) || !strings.Contains(out, svgPalette["LibraRisk"]) {
		t.Fatal("policy palette colours missing")
	}
	// Unknown series use the fallback palette.
	if !strings.Contains(out, svgFallback[0]) {
		t.Fatal("fallback colour missing for custom series")
	}
}

func TestWriteFigureSVGDegenerate(t *testing.T) {
	cases := []Figure{
		{ID: "empty"},
		{ID: "nopoints", Panels: []Panel{{Name: "(a)"}}},
		{ID: "flat", Panels: []Panel{{
			Name: "(a)", X: []float64{5, 5},
			Series: []Series{{Name: "EDF", Y: []float64{3, 3}}},
		}}},
		{ID: "nan", Panels: []Panel{{
			Name: "(a)", X: []float64{1, 2},
			Series: []Series{{Name: "EDF", Y: []float64{math.NaN(), math.Inf(1)}}},
		}}},
	}
	for _, f := range cases {
		var sb strings.Builder
		if err := WriteFigureSVG(&sb, f); err != nil {
			t.Fatalf("%s: %v", f.ID, err)
		}
		if !strings.Contains(sb.String(), "</svg>") {
			t.Fatalf("%s: truncated output", f.ID)
		}
	}
}

func TestSeriesColorCycle(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		seen[seriesColor("unknown", i)] = true
	}
	if len(seen) != len(svgFallback) {
		t.Fatalf("fallback cycle produced %d colours, want %d", len(seen), len(svgFallback))
	}
}
