package experiment

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clustersched/internal/checkpoint"
)

// superviseSpecs builds a small multi-cell spec grid over one policy pair.
func superviseSpecs(base BaseConfig) []RunSpec {
	var specs []RunSpec
	for _, pol := range []PolicyKind{EDF, LibraRisk} {
		for _, adf := range []float64{0.5, 0.7, 1.0} {
			specs = append(specs, RunSpec{
				Policy: pol, ArrivalDelayFactor: adf, InaccuracyPct: 100,
				Deadline: base.Deadline, Label: "supervise-test", Seed: base.Generator.Seed,
			})
		}
	}
	return specs
}

func TestSweepZeroSpecs(t *testing.T) {
	base := testBase()
	results := Sweep(base, nil, nil)
	if results == nil || len(results) != 0 {
		t.Fatalf("Sweep(0 specs) = %v, want empty non-nil slice", results)
	}
}

// TestPanicContainedToOneCell is ISSUE satellite (a): a cell whose policy
// panics must surface as one typed RunError while every other cell of the
// sweep completes normally.
func TestPanicContainedToOneCell(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := superviseSpecs(base)
	clean := Sweep(base, jobs, specs)
	if err := FirstError(clean); err != nil {
		t.Fatal(err)
	}

	poison := specs[2]
	testFailHook = func(spec RunSpec, attempt int) {
		if spec == poison {
			panic("deliberately panicking policy")
		}
	}
	defer func() { testFailHook = nil }()

	results := Sweep(base, jobs, specs)
	for i, r := range results {
		if specs[i] == poison {
			var re *RunError
			if !errors.As(r.Err, &re) {
				t.Fatalf("poisoned cell err = %v, want *RunError", r.Err)
			}
			if re.Kind != FailPanic {
				t.Fatalf("Kind = %q, want %q", re.Kind, FailPanic)
			}
			if re.Attempts != maxAttempts {
				t.Fatalf("Attempts = %d, want %d (one same-seed retry)", re.Attempts, maxAttempts)
			}
			if len(re.Stack) == 0 {
				t.Fatal("panic RunError carries no stack trace")
			}
			if !strings.Contains(re.Error(), "supervise-test") || !strings.Contains(re.Error(), "panic") {
				t.Fatalf("error message not identifying: %q", re.Error())
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("healthy cell %d failed: %v", i, r.Err)
		}
		if r.Summary != clean[i].Summary {
			t.Fatalf("healthy cell %d drifted next to a panicking neighbour:\n%+v\n%+v",
				i, r.Summary, clean[i].Summary)
		}
	}
}

// TestTransientPanicRetriedSameSeed: a cell that panics once and then
// succeeds must produce exactly the clean result — the retry reuses the
// same inputs, so determinism is preserved.
func TestTransientPanicRetriedSameSeed(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := superviseSpecs(base)
	clean := Sweep(base, jobs, specs)

	flaky := specs[1]
	testFailHook = func(spec RunSpec, attempt int) {
		if spec == flaky && attempt == 1 {
			panic("transient failure")
		}
	}
	defer func() { testFailHook = nil }()

	results := Sweep(base, jobs, specs)
	if err := FirstError(results); err != nil {
		t.Fatalf("transient panic not recovered: %v", err)
	}
	for i := range results {
		if results[i].Summary != clean[i].Summary {
			t.Fatalf("cell %d differs after retry:\n%+v\n%+v", i, results[i].Summary, clean[i].Summary)
		}
	}
}

// TestWatchdogTimeout: a run exceeding BaseConfig.RunTimeout surfaces as
// a typed timeout RunError after the single retry.
func TestWatchdogTimeout(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	base.RunTimeout = time.Nanosecond
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := superviseSpecs(base)[:2]
	results := Sweep(base, jobs, specs)
	for i, r := range results {
		var re *RunError
		if !errors.As(r.Err, &re) {
			t.Fatalf("cell %d err = %v, want *RunError", i, r.Err)
		}
		if re.Kind != FailTimeout {
			t.Fatalf("cell %d Kind = %q, want %q", i, re.Kind, FailTimeout)
		}
		if re.Attempts != maxAttempts {
			t.Fatalf("cell %d Attempts = %d, want %d", i, re.Attempts, maxAttempts)
		}
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("cell %d err chain lost the deadline: %v", i, r.Err)
		}
	}
}

// TestCancellationFlushesJournal is ISSUE satellite (b): cancelling a
// sweep mid-flight leaves a valid journal containing the completed cells,
// marks the rest canceled, and a resumed sweep reuses the journaled cells
// to reproduce the uninterrupted results exactly.
func TestCancellationFlushesJournal(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	base.Workers = 1 // serialize so "cancel after the first cell" is well defined
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := superviseSpecs(base)
	clean := Sweep(base, jobs, specs)
	if err := FirstError(clean); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := base
	interrupted.Journal = journal
	interrupted.Progress = func(ev ProgressEvent) {
		if ev.Done == 1 {
			cancel() // simulate SIGINT after the first completed cell
		}
	}
	results := SweepContext(ctx, interrupted, jobs, specs)
	cancel()

	var completed, canceled int
	for _, r := range results {
		if r.Err == nil {
			completed++
			continue
		}
		var re *RunError
		if !errors.As(r.Err, &re) || re.Kind != FailCanceled {
			t.Fatalf("interrupted cell err = %v, want canceled *RunError", r.Err)
		}
		canceled++
	}
	if completed == 0 || canceled == 0 {
		t.Fatalf("completed %d canceled %d, want both non-zero", completed, canceled)
	}

	// The journal on disk is valid JSONL holding exactly the completed cells.
	reloaded, err := checkpoint.Open(path)
	if err != nil {
		t.Fatalf("journal not valid after cancellation: %v", err)
	}
	if reloaded.Len() != completed {
		t.Fatalf("journal has %d records, want %d completed cells", reloaded.Len(), completed)
	}

	// Resume: same sweep against the reloaded journal completes and matches
	// the uninterrupted run cell for cell.
	resumed := base
	resumed.Journal = reloaded
	fromJournal := 0
	resumed.Progress = func(ev ProgressEvent) {
		if ev.FromJournal {
			fromJournal++
		}
	}
	final := SweepContext(context.Background(), resumed, jobs, specs)
	if err := FirstError(final); err != nil {
		t.Fatal(err)
	}
	if fromJournal != completed {
		t.Fatalf("resume reused %d journaled cells, want %d", fromJournal, completed)
	}
	for i := range final {
		if final[i].Summary != clean[i].Summary {
			t.Fatalf("cell %d differs after resume:\n%+v\n%+v", i, final[i].Summary, clean[i].Summary)
		}
	}
}

// TestResumeByteIdenticalFigure is ISSUE satellite (c) and the acceptance
// criterion: interrupt a figure sweep partway, resume it from the
// journal, and require the rendered figure to be byte-identical to an
// uninterrupted build.
func TestResumeByteIdenticalFigure(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := Figure1From(base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var clean bytes.Buffer
	if err := WriteFigure(&clean, fig); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := base
	interrupted.Workers = 2
	interrupted.Journal = journal
	interrupted.Progress = func(ev ProgressEvent) {
		if ev.Done == 10 { // interrupt deep into the 60-cell grid
			cancel()
		}
	}
	if _, err := Figure1FromContext(ctx, interrupted, jobs); err == nil {
		t.Fatal("interrupted figure build reported success")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted build err = %v, want a canceled chain", err)
	}
	cancel()
	if journal.Len() == 0 {
		t.Fatal("no cells journaled before interruption")
	}

	reloaded, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := base
	resumed.Journal = reloaded
	refig, err := Figure1FromContext(context.Background(), resumed, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var resumedOut bytes.Buffer
	if err := WriteFigure(&resumedOut, refig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean.Bytes(), resumedOut.Bytes()) {
		t.Fatal("resumed figure output is not byte-identical to the uninterrupted build")
	}
}

// TestChaosResumeFromJournalSkipsRuns: a fully journaled chaos sweep is
// satisfied without running a single simulation (the hook would panic on
// any attempt), and the mean σ aggregate survives the journal.
func TestChaosResumeFromJournalSkipsRuns(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 120
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chaos.jsonl")
	journal, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	withJournal := base
	withJournal.Journal = journal
	first := ChaosSweepContext(context.Background(), withJournal, jobs)
	for _, pt := range first {
		if pt.Err != nil {
			t.Fatalf("%v rate=%g: %v", pt.Policy, pt.FailuresPerDay, pt.Err)
		}
	}

	testFailHook = func(RunSpec, int) { panic("chaos cell re-ran despite full journal") }
	defer func() { testFailHook = nil }()
	reloaded, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	withJournal.Journal = reloaded
	second := ChaosSweepContext(context.Background(), withJournal, jobs)
	for i := range second {
		if second[i].Err != nil {
			t.Fatalf("journaled chaos cell %d failed: %v", i, second[i].Err)
		}
		if second[i].Summary != first[i].Summary || second[i].MeanSigma != first[i].MeanSigma {
			t.Fatalf("chaos cell %d drifted through the journal:\n%+v σ=%g\n%+v σ=%g",
				i, first[i].Summary, first[i].MeanSigma, second[i].Summary, second[i].MeanSigma)
		}
	}
}

// TestFirstErrorIdentifiesCell is ISSUE satellite: the one-line error of
// a failed cell names the figure label, seed, policy and parameters.
func TestFirstErrorIdentifiesCell(t *testing.T) {
	spec := RunSpec{
		Policy: LibraRisk, ArrivalDelayFactor: 0.3, InaccuracyPct: 100,
		Label: "figure4", Seed: 42,
	}
	re := &RunError{Spec: spec, Stage: "simulate", Kind: FailEngine, Attempts: 1,
		Cause: errors.New("boom")}
	err := FirstError([]Result{{Spec: spec, Err: re}})
	for _, want := range []string{"figure4", "seed=42", "LibraRisk", "adf=0.3", "boom", "engine"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("FirstError = %q, missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "\n") {
		t.Fatalf("FirstError not one line: %q", err)
	}

	// Non-RunError failures still get the cell identity prefix.
	plain := FirstError([]Result{{Spec: spec, Err: errors.New("plain failure")}})
	for _, want := range []string{"figure4", "seed=42", "plain failure"} {
		if !strings.Contains(plain.Error(), want) {
			t.Fatalf("FirstError(plain) = %q, missing %q", plain, want)
		}
	}
}

// TestCanceledSweepNeverFabricatesResults: every cell of a pre-canceled
// sweep carries a canceled RunError, none a zero-value "success".
func TestCanceledSweepNeverFabricatesResults(t *testing.T) {
	base := testBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := SweepContext(ctx, base, jobs, superviseSpecs(base))
	for i, r := range results {
		var re *RunError
		if !errors.As(r.Err, &re) || re.Kind != FailCanceled {
			t.Fatalf("cell %d of pre-canceled sweep: err = %v, want canceled *RunError", i, r.Err)
		}
	}
}
