package experiment

import (
	"fmt"

	"clustersched/internal/metrics"
)

// FigureAllPolicies is the seven-way extension comparison: the paper's
// three policies plus FCFS, EASY/conservative backfilling and QoPS, swept
// over the arrival delay factor with trace estimates — where do the
// mainstream estimate consumers land between Libra and LibraRisk?
func FigureAllPolicies(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	policies := append(append([]PolicyKind(nil), AllPolicies...), ExtensionPolicies...)
	var specs []RunSpec
	index := map[[2]int]int{}
	for pi, pol := range policies {
		for xi, x := range Fig1Factors {
			index[[2]int{pi, xi}] = len(specs)
			specs = append(specs, RunSpec{Policy: pol, ArrivalDelayFactor: x, InaccuracyPct: 100, Deadline: base.Deadline})
		}
	}
	results := Sweep(base, baseJobs, specs)
	if err := FirstError(results); err != nil {
		return Figure{}, err
	}
	mkPanel := func(name, yLabel string, get func(metrics.Summary) float64) Panel {
		p := Panel{Name: name, XLabel: "arrival delay factor", YLabel: yLabel, X: Fig1Factors}
		for pi, pol := range policies {
			ys := make([]float64, len(Fig1Factors))
			for xi := range Fig1Factors {
				ys[xi] = get(results[index[[2]int{pi, xi}]].Summary)
			}
			p.Series = append(p.Series, Series{Name: pol.String(), Y: ys})
		}
		return p
	}
	return Figure{
		ID:    "allpolicies",
		Title: "Extension: seven-way policy comparison under trace estimates",
		Panels: []Panel{
			mkPanel("(a) % of jobs with deadlines fulfilled — actual runtime estimate from trace",
				"% of jobs with deadlines fulfilled", func(s metrics.Summary) float64 { return s.PctFulfilled }),
			mkPanel("(b) average slowdown — actual runtime estimate from trace",
				"average slowdown", func(s metrics.Summary) float64 { return s.AvgSlowdownMet }),
		},
	}, nil
}

// HeteroImbalances are the speed-imbalance levels the heterogeneity study
// sweeps: half the nodes run at (1+δ)×, the other half at (1−δ)× the
// reference rating, keeping aggregate capacity constant.
var HeteroImbalances = []float64{0, 0.25, 0.5, 0.75}

// HeteroRatings builds the split-speed rating vector for imbalance delta.
func HeteroRatings(nodes int, rating, delta float64) []float64 {
	out := make([]float64, nodes)
	for i := range out {
		if i < nodes/2 {
			out[i] = rating * (1 + delta)
		} else {
			out[i] = rating * (1 - delta)
		}
	}
	return out
}

// FigureHetero is the heterogeneity extension: the paper's model
// translates estimates across node speeds but evaluates a homogeneous
// SP2; this experiment measures how a constant-capacity speed imbalance
// affects each policy (gang-scheduled EDF runs at its slowest member's
// pace; proportional-share nodes absorb imbalance per slice).
func FigureHetero(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	type key struct {
		mode float64
		pol  PolicyKind
		xi   int
	}
	index := map[key]int{}
	var specs []RunSpec
	var bases []BaseConfig
	for _, mode := range []float64{0, 100} {
		for _, pol := range AllPolicies {
			for xi, delta := range HeteroImbalances {
				b := base
				b.Ratings = HeteroRatings(base.Nodes, base.Rating, delta)
				index[key{mode, pol, xi}] = len(specs)
				specs = append(specs, RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: mode, Deadline: base.Deadline})
				bases = append(bases, b)
			}
		}
	}
	// Each point uses its own cluster geometry, so run them directly (the
	// pool in Sweep assumes one shared base).
	results := make([]metrics.Summary, len(specs))
	for i := range specs {
		s, err := Run(bases[i], baseJobs, specs[i])
		if err != nil {
			return Figure{}, fmt.Errorf("experiment: hetero point %d: %w", i, err)
		}
		results[i] = s
	}
	var panels []Panel
	letters := []string{"(a)", "(b)", "(c)", "(d)"}
	li := 0
	for _, metric := range []struct {
		yLabel string
		value  func(metrics.Summary) float64
	}{
		{"% of jobs with deadlines fulfilled", func(s metrics.Summary) float64 { return s.PctFulfilled }},
		{"average slowdown", func(s metrics.Summary) float64 { return s.AvgSlowdownMet }},
	} {
		for _, mode := range estimateModes {
			p := Panel{
				Name:   fmt.Sprintf("%s %s — %s", letters[li], metric.yLabel, mode.label),
				XLabel: "node speed imbalance ±δ",
				YLabel: metric.yLabel,
				X:      HeteroImbalances,
			}
			for _, pol := range AllPolicies {
				ys := make([]float64, len(HeteroImbalances))
				for xi := range HeteroImbalances {
					ys[xi] = metric.value(results[index[key{mode.pct, pol, xi}]])
				}
				p.Series = append(p.Series, Series{Name: pol.String(), Y: ys})
			}
			panels = append(panels, p)
			li++
		}
	}
	return Figure{
		ID:     "hetero",
		Title:  "Extension: constant-capacity node-speed imbalance",
		Panels: panels,
	}, nil
}
