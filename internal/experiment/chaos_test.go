package experiment

import (
	"reflect"
	"testing"

	"clustersched/internal/fault"
)

// TestZeroFaultRateIsExactlyNoFault is an acceptance criterion for the
// fault subsystem: a zero fault.Config (what ChaosFaultConfig returns for
// rate 0) plus the invariant checker must reproduce the plain no-fault
// summary byte-for-byte, for every policy. The fault layer is provably a
// no-op when disabled.
func TestZeroFaultRateIsExactlyNoFault(t *testing.T) {
	base := testBase()
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range AllPolicies {
		spec := RunSpec{Policy: pol, InaccuracyPct: 100, Deadline: base.Deadline}
		baseline, err := Run(base, jobs, spec)
		if err != nil {
			t.Fatalf("%v baseline: %v", pol, err)
		}
		spec.Faults = ChaosFaultConfig(0, 1) // rate 0 → zero Config
		checked := base
		checked.CheckInvariants = true
		got, err := Run(checked, jobs, spec)
		if err != nil {
			t.Fatalf("%v checked: %v", pol, err)
		}
		if got != baseline {
			t.Errorf("%v: zero-fault run diverges from baseline\nwith    %+v\nwithout %+v", pol, got, baseline)
		}
	}
}

// TestChaosSweepDeterministic runs the chaos grid twice at reduced scale:
// identical seeds must give byte-identical points (summaries, kill counts,
// mean σ).
func TestChaosSweepDeterministic(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 200
	base.CheckInvariants = true
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	a := ChaosSweep(base, jobs)
	b := ChaosSweep(base, jobs)
	for i := range a {
		if a[i].Err != nil {
			t.Fatalf("point %d (%v rate=%g): %v", i, a[i].Policy, a[i].FailuresPerDay, a[i].Err)
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("point %d not deterministic:\nrun1 %+v\nrun2 %+v", i, a[i], b[i])
		}
	}
}

// TestChaosSweepFaultsBite sanity-checks the sweep's physics: at the
// highest failure rate some jobs must actually get killed by crashes, and
// the summaries still conserve jobs (the checker ran, so a run error would
// have surfaced any leak).
func TestChaosSweepFaultsBite(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 200
	base.CheckInvariants = true
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	points := ChaosSweep(base, jobs)
	kills := 0
	for _, pt := range points {
		if pt.Err != nil {
			t.Fatalf("%v rate=%g: %v", pt.Policy, pt.FailuresPerDay, pt.Err)
		}
		if pt.FailuresPerDay == 0 && pt.Summary.Killed != 0 {
			t.Errorf("%v: killed %d jobs at fault rate 0", pt.Policy, pt.Summary.Killed)
		}
		if pt.FailuresPerDay == ChaosFailuresPerDay[len(ChaosFailuresPerDay)-1] {
			kills += pt.Summary.Killed
		}
	}
	if kills == 0 {
		t.Error("no job killed at the highest failure rate across all policies")
	}
}

// TestAllFiguresUnchangedByInvariantChecker replays the full paper figure
// set (reduced scale) with the invariant checker armed and zero faults:
// every panel must be byte-identical to the unchecked baseline, proving
// the new machinery is inert when not exercised.
func TestAllFiguresUnchangedByInvariantChecker(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure grid in -short mode")
	}
	base := testBase()
	base.Generator.Jobs = 150
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := AllFiguresFrom(base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	checked := base
	checked.CheckInvariants = true
	got, err := AllFiguresFrom(checked, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, baseline) {
		t.Fatal("figures diverge with the invariant checker armed")
	}
}

// TestRunInstrumentedRejectsFaultsForUnsupportedPolicy pins the error
// contract: policies without recovery semantics cannot run under fault
// injection.
func TestRunInstrumentedRejectsFaultsForUnsupportedPolicy(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 50
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{
		Policy:        FCFS,
		InaccuracyPct: 0,
		Deadline:      base.Deadline,
		Faults:        fault.Config{MTBF: 1000, MTTR: 100},
	}
	if _, err := Run(base, jobs, spec); err == nil {
		t.Fatal("fault injection accepted for FCFS")
	}
}

// TestFigureChaosShape builds the chaos figure at small scale and checks
// its panel geometry.
func TestFigureChaosShape(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid in -short mode")
	}
	base := testBase()
	base.Generator.Jobs = 150
	fig, err := FigureChaos(base)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "chaos" || len(fig.Panels) != 3 {
		t.Fatalf("figure = %q with %d panels", fig.ID, len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.X) != len(ChaosFailuresPerDay) {
			t.Fatalf("panel %q has %d x points", p.Name, len(p.X))
		}
		if len(p.Series) != len(AllPolicies) {
			t.Fatalf("panel %q has %d series", p.Name, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.Y) != len(p.X) {
				t.Fatalf("panel %q series %q: %d y for %d x", p.Name, s.Name, len(s.Y), len(p.X))
			}
		}
	}
}
