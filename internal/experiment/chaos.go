package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"clustersched/internal/fault"
	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Chaos experiment defaults: a "Figure 5" the paper never ran, opening the
// other axis of deadline risk — machines that fail. Failure rates are in
// node failures per simulated day; each becomes an exponential MTBF.
var (
	// ChaosFailuresPerDay sweeps from no failures to an aggressively
	// unreliable cluster (4 failures per node-day).
	ChaosFailuresPerDay = []float64{0, 0.25, 0.5, 1, 2, 4}
	// ChaosMTTRSeconds is the mean repair time (1 hour).
	ChaosMTTRSeconds = 3600.0
	// ChaosMonitorInterval is the σ sampling period for time-shared runs.
	ChaosMonitorInterval = 600.0
	// ChaosSeed derives each run's fault streams (mixed with the policy
	// and rate indices so every grid cell has an independent trace).
	ChaosSeed uint64 = 0x5eed_fa11
)

// ChaosPoint is one grid cell of the chaos sweep.
type ChaosPoint struct {
	Policy         PolicyKind
	FailuresPerDay float64
	Summary        metrics.Summary
	// MeanSigma is the run's time-averaged cluster risk σ (time-shared
	// policies only; 0 for EDF, which has no risk metric).
	MeanSigma float64
	Err       error
}

// ChaosFaultConfig builds the fault configuration for one grid cell:
// failuresPerDay exponential crashes per node with a fixed MTTR, plus a
// mild straggler process at one-quarter of the crash rate that halves a
// node's speed for ten minutes on average.
func ChaosFaultConfig(failuresPerDay float64, seed uint64) fault.Config {
	if failuresPerDay <= 0 {
		return fault.Config{}
	}
	mtbf := 86400 / failuresPerDay
	return fault.Config{
		Seed:              seed,
		MTBF:              mtbf,
		MTTR:              ChaosMTTRSeconds,
		StragglerMTBF:     4 * mtbf,
		StragglerDuration: 600,
		StragglerFactor:   0.5,
	}
}

// ChaosSweep runs the failure-rate × policy grid over a shared base
// workload, in parallel, and returns the points in grid order (policy
// major, rate minor).
func ChaosSweep(base BaseConfig, baseJobs []workload.Job) []ChaosPoint {
	points := make([]ChaosPoint, 0, len(AllPolicies)*len(ChaosFailuresPerDay))
	for _, pol := range AllPolicies {
		for _, rate := range ChaosFailuresPerDay {
			points = append(points, ChaosPoint{Policy: pol, FailuresPerDay: rate})
		}
	}
	workers := base.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				pt := &points[i]
				seed := ChaosSeed ^ (uint64(pt.Policy+1) << 40) ^ uint64(i)
				spec := RunSpec{
					Policy:             pt.Policy,
					ArrivalDelayFactor: workload.DefaultArrivalDelayFactor,
					InaccuracyPct:      100,
					Deadline:           base.Deadline,
					Faults:             ChaosFaultConfig(pt.FailuresPerDay, seed),
				}
				sum, mon, err := RunInstrumented(base, baseJobs, spec, ChaosMonitorInterval)
				pt.Summary, pt.Err = sum, err
				if mon != nil {
					var sigmaSum float64
					samples := mon.Samples()
					for _, s := range samples {
						sigmaSum += s.MeanSigma
					}
					if len(samples) > 0 {
						pt.MeanSigma = sigmaSum / float64(len(samples))
					}
				}
			}
		}()
	}
	for i := range points {
		work <- i
	}
	close(work)
	wg.Wait()
	return points
}

// FigureChaos builds the chaos figure: deadline-met fraction, crash-killed
// jobs, and mean cluster risk σ against the node failure rate, under trace
// runtime estimates.
func FigureChaos(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	return FigureChaosFrom(base, baseJobs)
}

// FigureChaosFrom is FigureChaos over a pre-generated base workload.
func FigureChaosFrom(base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	points := ChaosSweep(base, baseJobs)
	lookup := make(map[PolicyKind]map[float64]*ChaosPoint, len(AllPolicies))
	for i := range points {
		pt := &points[i]
		if pt.Err != nil {
			return Figure{}, fmt.Errorf("experiment: chaos %s rate=%g: %w", pt.Policy, pt.FailuresPerDay, pt.Err)
		}
		if lookup[pt.Policy] == nil {
			lookup[pt.Policy] = make(map[float64]*ChaosPoint, len(ChaosFailuresPerDay))
		}
		lookup[pt.Policy][pt.FailuresPerDay] = pt
	}
	panels := make([]Panel, 0, 3)
	for _, metric := range []struct {
		name   string
		yLabel string
		value  func(*ChaosPoint) float64
	}{
		{"(a)", "% of jobs with deadlines fulfilled", func(p *ChaosPoint) float64 { return p.Summary.PctFulfilled }},
		{"(b)", "jobs killed by node crashes", func(p *ChaosPoint) float64 { return float64(p.Summary.Killed) }},
		{"(c)", "mean cluster risk sigma", func(p *ChaosPoint) float64 { return p.MeanSigma }},
	} {
		panel := Panel{
			Name:   fmt.Sprintf("%s %s — actual runtime estimate from trace", metric.name, metric.yLabel),
			XLabel: "node failures per day",
			YLabel: metric.yLabel,
			X:      ChaosFailuresPerDay,
		}
		for _, pol := range AllPolicies {
			ys := make([]float64, len(ChaosFailuresPerDay))
			for i, rate := range ChaosFailuresPerDay {
				ys[i] = metric.value(lookup[pol][rate])
			}
			panel.Series = append(panel.Series, Series{Name: pol.String(), Y: ys})
		}
		panels = append(panels, panel)
	}
	return Figure{
		ID:     "chaos",
		Title:  "Impact of node failures (chaos experiment)",
		Panels: panels,
	}, nil
}
