package experiment

import (
	"context"
	"fmt"

	"clustersched/internal/checkpoint"
	"clustersched/internal/fault"
	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Chaos experiment defaults: a "Figure 5" the paper never ran, opening the
// other axis of deadline risk — machines that fail. Failure rates are in
// node failures per simulated day; each becomes an exponential MTBF.
var (
	// ChaosFailuresPerDay sweeps from no failures to an aggressively
	// unreliable cluster (4 failures per node-day).
	ChaosFailuresPerDay = []float64{0, 0.25, 0.5, 1, 2, 4}
	// ChaosMTTRSeconds is the mean repair time (1 hour).
	ChaosMTTRSeconds = 3600.0
	// ChaosMonitorInterval is the σ sampling period for time-shared runs.
	ChaosMonitorInterval = 600.0
	// ChaosSeed derives each run's fault streams (mixed with the policy
	// and rate indices so every grid cell has an independent trace).
	ChaosSeed uint64 = 0x5eed_fa11
)

// ChaosPoint is one grid cell of the chaos sweep.
type ChaosPoint struct {
	Policy         PolicyKind
	FailuresPerDay float64
	Summary        metrics.Summary
	// MeanSigma is the run's time-averaged cluster risk σ (time-shared
	// policies only; 0 for EDF, which has no risk metric).
	MeanSigma float64
	Err       error
}

// ChaosFaultConfig builds the fault configuration for one grid cell:
// failuresPerDay exponential crashes per node with a fixed MTTR, plus a
// mild straggler process at one-quarter of the crash rate that halves a
// node's speed for ten minutes on average.
func ChaosFaultConfig(failuresPerDay float64, seed uint64) fault.Config {
	if failuresPerDay <= 0 {
		return fault.Config{}
	}
	mtbf := 86400 / failuresPerDay
	return fault.Config{
		Seed:              seed,
		MTBF:              mtbf,
		MTTR:              ChaosMTTRSeconds,
		StragglerMTBF:     4 * mtbf,
		StragglerDuration: 600,
		StragglerFactor:   0.5,
	}
}

// ChaosSweep runs the failure-rate × policy grid over a shared base
// workload, in parallel, and returns the points in grid order (policy
// major, rate minor).
func ChaosSweep(base BaseConfig, baseJobs []workload.Job) []ChaosPoint {
	return ChaosSweepContext(context.Background(), base, baseJobs)
}

// ChaosSweepContext is ChaosSweep under the same supervision contract as
// SweepContext: panic containment, the per-run watchdog, same-seed retry
// for transient failures, progress reporting, checkpoint/resume through
// BaseConfig.Journal (the mean σ aggregate rides the journal record), and
// cancellation that stops admission and aborts in-flight runs.
func ChaosSweepContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) []ChaosPoint {
	points := make([]ChaosPoint, 0, len(AllPolicies)*len(ChaosFailuresPerDay))
	specs := make([]RunSpec, 0, cap(points))
	for _, pol := range AllPolicies {
		for _, rate := range ChaosFailuresPerDay {
			i := len(points)
			points = append(points, ChaosPoint{Policy: pol, FailuresPerDay: rate})
			seed := ChaosSeed ^ (uint64(pol+1) << 40) ^ uint64(i)
			specs = append(specs, RunSpec{
				Policy:             pol,
				ArrivalDelayFactor: workload.DefaultArrivalDelayFactor,
				InaccuracyPct:      100,
				Deadline:           base.Deadline,
				Faults:             ChaosFaultConfig(rate, seed),
				Label:              "chaos",
				Seed:               base.Generator.Seed,
			})
		}
	}
	var digest string
	if base.Journal != nil {
		digest = WorkloadDigest(baseJobs)
	}
	finished := make([]bool, len(points))
	var progress func(i int, fromJournal bool)
	if base.Progress != nil {
		prog := newProgressCounter(base.Progress, len(points))
		progress = func(i int, fromJournal bool) {
			prog(ProgressEvent{Spec: specs[i], FromJournal: fromJournal, Err: points[i].Err})
		}
	} else {
		progress = func(int, bool) {}
	}
	workers := base.workerCount(len(points))
	scratches := newScratchPool(base, workers)
	runPool(ctx, len(points), workers, func(w, i int) {
		pt, spec := &points[i], specs[i]
		var key string
		if base.Journal != nil {
			k, err := CellKey(base, spec, digest)
			if err != nil {
				pt.Err = &RunError{Spec: spec, Stage: "journal", Kind: FailEngine, Cause: err}
				finished[i] = true
				progress(i, false)
				return
			}
			key = k
			if rec, ok := base.Journal.Lookup(key); ok {
				pt.Summary, pt.MeanSigma = rec.Summary, rec.MeanSigma
				finished[i] = true
				progress(i, true)
				return
			}
		}
		sc := scratchFor(scratches, w)
		sum, sigma, err := superviseCell(ctx, base, spec, func(runCtx context.Context) (metrics.Summary, float64, error) {
			use := sc.acquire()
			s, mon, err := runInstrumented(runCtx, base, baseJobs, spec, ChaosMonitorInterval, use, i)
			use.release()
			var meanSigma float64
			if mon != nil {
				var sigmaSum float64
				samples := mon.Samples()
				for _, smp := range samples {
					sigmaSum += smp.MeanSigma
				}
				if len(samples) > 0 {
					meanSigma = sigmaSum / float64(len(samples))
				}
			}
			return s, meanSigma, err
		})
		pt.Summary, pt.MeanSigma, pt.Err = sum, sigma, err
		if err == nil && base.Journal != nil {
			if jerr := base.Journal.Append(checkpoint.Record{Key: key, Label: spec.Label, Summary: sum, MeanSigma: sigma}); jerr != nil {
				pt.Err = &RunError{Spec: spec, Stage: "journal", Kind: FailEngine, Attempts: 1, Cause: jerr}
			}
		}
		finished[i] = true
		progress(i, false)
	})
	if err := ctx.Err(); err != nil {
		for i := range points {
			if !finished[i] {
				points[i].Err = &RunError{
					Spec: specs[i], Stage: "admission", Kind: FailCanceled, Cause: err,
				}
			}
		}
	}
	return points
}

// FigureChaos builds the chaos figure: deadline-met fraction, crash-killed
// jobs, and mean cluster risk σ against the node failure rate, under trace
// runtime estimates.
func FigureChaos(base BaseConfig) (Figure, error) {
	baseJobs, err := GenerateBase(base)
	if err != nil {
		return Figure{}, err
	}
	return FigureChaosFrom(base, baseJobs)
}

// FigureChaosFrom is FigureChaos over a pre-generated base workload.
func FigureChaosFrom(base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	return FigureChaosFromContext(context.Background(), base, baseJobs)
}

// FigureChaosFromContext is FigureChaosFrom under a cancellable context.
func FigureChaosFromContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job) (Figure, error) {
	points := ChaosSweepContext(ctx, base, baseJobs)
	lookup := make(map[PolicyKind]map[float64]*ChaosPoint, len(AllPolicies))
	for i := range points {
		pt := &points[i]
		if pt.Err != nil {
			return Figure{}, fmt.Errorf("experiment: chaos %s rate=%g: %w", pt.Policy, pt.FailuresPerDay, pt.Err)
		}
		if lookup[pt.Policy] == nil {
			lookup[pt.Policy] = make(map[float64]*ChaosPoint, len(ChaosFailuresPerDay))
		}
		lookup[pt.Policy][pt.FailuresPerDay] = pt
	}
	panels := make([]Panel, 0, 3)
	for _, metric := range []struct {
		name   string
		yLabel string
		value  func(*ChaosPoint) float64
	}{
		{"(a)", "% of jobs with deadlines fulfilled", func(p *ChaosPoint) float64 { return p.Summary.PctFulfilled }},
		{"(b)", "jobs killed by node crashes", func(p *ChaosPoint) float64 { return float64(p.Summary.Killed) }},
		{"(c)", "mean cluster risk sigma", func(p *ChaosPoint) float64 { return p.MeanSigma }},
	} {
		panel := Panel{
			Name:   fmt.Sprintf("%s %s — actual runtime estimate from trace", metric.name, metric.yLabel),
			XLabel: "node failures per day",
			YLabel: metric.yLabel,
			X:      ChaosFailuresPerDay,
		}
		for _, pol := range AllPolicies {
			ys := make([]float64, len(ChaosFailuresPerDay))
			for i, rate := range ChaosFailuresPerDay {
				ys[i] = metric.value(lookup[pol][rate])
			}
			panel.Series = append(panel.Series, Series{Name: pol.String(), Y: ys})
		}
		panels = append(panels, panel)
	}
	return Figure{
		ID:     "chaos",
		Title:  "Impact of node failures (chaos experiment)",
		Panels: panels,
	}, nil
}
