// Package experiment defines and executes the paper's evaluation: four
// figures of parameter sweeps comparing EDF, Libra and LibraRisk on a
// synthetic SDSC SP2 workload, with both accurate and trace runtime
// estimates. Sweeps run in parallel across independent simulations.
package experiment

import (
	"fmt"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// PolicyKind names an admission-control strategy under test.
type PolicyKind int

const (
	EDF PolicyKind = iota
	Libra
	LibraRisk
	// Extension comparators (related work from the paper's §2).
	FCFS
	BackfillEASY
	BackfillCons
	QoPS
)

// AllPolicies is the paper's comparison set, in presentation order.
var AllPolicies = []PolicyKind{EDF, Libra, LibraRisk}

// ExtensionPolicies are the related-work comparators available beyond the
// paper's three.
var ExtensionPolicies = []PolicyKind{FCFS, BackfillEASY, BackfillCons, QoPS}

func (k PolicyKind) String() string {
	switch k {
	case EDF:
		return "EDF"
	case Libra:
		return "Libra"
	case LibraRisk:
		return "LibraRisk"
	case FCFS:
		return "FCFS"
	case BackfillEASY:
		return "EASY"
	case BackfillCons:
		return "Conservative"
	case QoPS:
		return "QoPS"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// BaseConfig fixes everything a sweep does not vary.
type BaseConfig struct {
	Nodes  int
	Rating float64
	// Ratings, when non-empty, overrides Nodes/Rating with per-node SPEC
	// ratings (heterogeneous cluster); Cluster.RefRating stays the unit
	// runtimes are expressed in.
	Ratings   []float64
	Cluster   cluster.Config
	Generator workload.GeneratorConfig
	Deadline  workload.DeadlineConfig
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
	// QoPSSlack is the slack factor used when Policy is QoPS.
	QoPSSlack float64
	// DisableFastPaths turns off the admission fast paths in the Libra and
	// LibraRisk policies (combine with Cluster.NaivePredictor to also use
	// the reference fluid predictor). The differential tests run both
	// configurations at paper scale and assert identical summaries.
	DisableFastPaths bool
}

// nodeRatings returns the effective per-node ratings.
func (b BaseConfig) nodeRatings() []float64 {
	if len(b.Ratings) > 0 {
		return b.Ratings
	}
	out := make([]float64, b.Nodes)
	for i := range out {
		out[i] = b.Rating
	}
	return out
}

// DefaultBase returns the paper's setup: 128 nodes of rating 168, the
// calibrated 3000-job SDSC SP2-like workload, default deadline model.
func DefaultBase() BaseConfig {
	return BaseConfig{
		Nodes:     workload.SDSCSP2Nodes,
		Rating:    workload.SDSCSP2Rating,
		Cluster:   cluster.DefaultConfig(),
		Generator: workload.DefaultGeneratorConfig(),
		Deadline:  workload.DefaultDeadlineConfig(),
	}
}

// RunSpec is one simulation: a policy, a workload variation, and an
// estimate inaccuracy level.
type RunSpec struct {
	Policy             PolicyKind
	ArrivalDelayFactor float64
	InaccuracyPct      float64
	Deadline           workload.DeadlineConfig
}

// Run executes one simulation from pre-generated base jobs (before
// deadline assignment and arrival scaling) and returns its summary.
func Run(base BaseConfig, baseJobs []workload.Job, spec RunSpec) (metrics.Summary, error) {
	jobs, err := workload.AssignDeadlines(baseJobs, spec.Deadline)
	if err != nil {
		return metrics.Summary{}, err
	}
	jobs = workload.ScaleArrivals(jobs, spec.ArrivalDelayFactor)

	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	pol, err := buildPolicy(base, spec.Policy, rec)
	if err != nil {
		return metrics.Summary{}, err
	}
	if err := core.RunSimulation(e, pol, rec, jobs, spec.InaccuracyPct); err != nil {
		return metrics.Summary{}, err
	}
	return rec.Summarize(), nil
}

// buildPolicy constructs the policy and its execution substrate.
func buildPolicy(base BaseConfig, kind PolicyKind, rec *metrics.Recorder) (core.Policy, error) {
	ratings := base.nodeRatings()
	switch kind {
	case EDF, FCFS, BackfillEASY, BackfillCons, QoPS:
		c, err := cluster.NewSpaceSharedHetero(ratings, base.Cluster)
		if err != nil {
			return nil, err
		}
		switch kind {
		case EDF:
			return core.NewEDF(c, rec), nil
		case FCFS:
			return sched.NewFCFS(c, rec), nil
		case BackfillEASY:
			return sched.NewBackfill(c, rec, sched.EASYBackfill), nil
		case BackfillCons:
			return sched.NewBackfill(c, rec, sched.ConservativeBackfill), nil
		default:
			slack := base.QoPSSlack
			if slack == 0 {
				slack = 2
			}
			return sched.NewQoPS(c, rec, slack), nil
		}
	case Libra, LibraRisk:
		c, err := cluster.NewTimeSharedHetero(ratings, base.Cluster)
		if err != nil {
			return nil, err
		}
		if kind == Libra {
			p := core.NewLibra(c, rec)
			p.DisableFastPath = base.DisableFastPaths
			return p, nil
		}
		p := core.NewLibraRisk(c, rec)
		p.DisableFastPath = base.DisableFastPaths
		return p, nil
	default:
		return nil, fmt.Errorf("experiment: unknown policy %v", kind)
	}
}

// GenerateBase produces the shared base workload for a sweep.
func GenerateBase(base BaseConfig) ([]workload.Job, error) {
	return workload.Generate(base.Generator)
}
