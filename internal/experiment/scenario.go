// Package experiment defines and executes the paper's evaluation: four
// figures of parameter sweeps comparing EDF, Libra and LibraRisk on a
// synthetic SDSC SP2 workload, with both accurate and trace runtime
// estimates. Sweeps run in parallel across independent simulations.
package experiment

import (
	"context"
	"fmt"
	"time"

	"clustersched/internal/checkpoint"
	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/fault"
	"clustersched/internal/metrics"
	"clustersched/internal/obs"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// PolicyKind names an admission-control strategy under test.
type PolicyKind int

const (
	EDF PolicyKind = iota
	Libra
	LibraRisk
	// Extension comparators (related work from the paper's §2).
	FCFS
	BackfillEASY
	BackfillCons
	QoPS
)

// AllPolicies is the paper's comparison set, in presentation order.
var AllPolicies = []PolicyKind{EDF, Libra, LibraRisk}

// ExtensionPolicies are the related-work comparators available beyond the
// paper's three.
var ExtensionPolicies = []PolicyKind{FCFS, BackfillEASY, BackfillCons, QoPS}

func (k PolicyKind) String() string {
	switch k {
	case EDF:
		return "EDF"
	case Libra:
		return "Libra"
	case LibraRisk:
		return "LibraRisk"
	case FCFS:
		return "FCFS"
	case BackfillEASY:
		return "EASY"
	case BackfillCons:
		return "Conservative"
	case QoPS:
		return "QoPS"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// BaseConfig fixes everything a sweep does not vary.
type BaseConfig struct {
	Nodes  int
	Rating float64
	// Ratings, when non-empty, overrides Nodes/Rating with per-node SPEC
	// ratings (heterogeneous cluster); Cluster.RefRating stays the unit
	// runtimes are expressed in.
	Ratings   []float64
	Cluster   cluster.Config
	Generator workload.GeneratorConfig
	Deadline  workload.DeadlineConfig
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
	// QoPSSlack is the slack factor used when Policy is QoPS.
	QoPSSlack float64
	// DisableFastPaths turns off the admission fast paths in the Libra and
	// LibraRisk policies (combine with Cluster.NaivePredictor to also use
	// the reference fluid predictor). The differential tests run both
	// configurations at paper scale and assert identical summaries.
	DisableFastPaths bool
	// CheckInvariants installs a sim.InvariantChecker on every run: clock
	// monotonicity, job conservation, and cluster structural invariants
	// are re-validated after each event, and any violation fails the run.
	CheckInvariants bool
	// DisableReuse makes every sweep cell build its engine, recorder,
	// cluster and policy from scratch instead of reusing the per-worker run
	// context. Results are identical by contract — the differential tests
	// run paper-scale sweeps both ways and assert byte-identical summaries
	// — so the flag exists for those tests and for bisecting a suspected
	// reuse bug. Like the supervision knobs it cannot affect results and is
	// excluded from checkpoint cell keys.
	DisableReuse bool
	// Shards > 1 runs every time-shared cell on the space-partitioned
	// parallel engine: nodes split into Shards contiguous groups, each
	// advancing on its own event queue between admission barriers (see
	// core.RunSimulationSharded). Results are byte-identical to the
	// sequential engine at any shard count by construction — the
	// differential tests assert it at K = 1, 2, 4, 8 — so, like
	// DisableReuse, the knob is excluded from checkpoint cell keys.
	// Policies on space-shared clusters (EDF and the extension policies)
	// ignore it: every completion there triggers a dispatch decision, so a
	// barrier per event would serialize the run anyway. 0 and 1 mean
	// sequential. Note each cell then uses Shards goroutines; combined
	// with Workers-way sweep parallelism the products multiply.
	Shards int

	// Obs, when set, collects tracing, metrics and/or an admission audit
	// log across the sweep's runs (see internal/obs). Like the supervision
	// knobs it cannot affect simulation results — the differential test
	// asserts byte-identical figures with it on and off — and is excluded
	// from checkpoint cell keys. Note that cells satisfied from the resume
	// journal are not re-run and therefore contribute no observations.
	Obs *obs.Sweep

	// Supervision knobs. None of these affect simulation results — they
	// are excluded from checkpoint cell keys — only how a sweep reacts to
	// slow, failing or interrupted cells.

	// RunTimeout, when positive, is the per-cell wall-clock watchdog: a
	// run exceeding it is aborted at event-loop granularity and surfaces
	// as a RunError with FailTimeout (retried once, like a panic).
	RunTimeout time.Duration
	// Progress, when set, is called after every finished cell (run,
	// journal hit, or failure) with the sweep-level completion count.
	// Calls are serialized; the callback must not block for long, as it
	// is on the worker pool's completion path.
	Progress func(ProgressEvent)
	// Journal, when set, checkpoints every successfully completed cell
	// and satisfies cells whose content key is already journaled without
	// re-running them — the resume path after an interrupted sweep.
	Journal *checkpoint.Journal
}

// ProgressEvent reports one finished sweep cell to BaseConfig.Progress.
type ProgressEvent struct {
	Done  int // finished cells so far, including this one
	Total int // cells in the sweep
	Spec  RunSpec
	// FromJournal marks a cell satisfied from the checkpoint journal
	// instead of being run.
	FromJournal bool
	// Err is the cell's failure, if any (typically a *RunError).
	Err error
}

// nodeRatings returns the effective per-node ratings.
func (b BaseConfig) nodeRatings() []float64 {
	if len(b.Ratings) > 0 {
		return b.Ratings
	}
	out := make([]float64, b.Nodes)
	for i := range out {
		out[i] = b.Rating
	}
	return out
}

// DefaultBase returns the paper's setup: 128 nodes of rating 168, the
// calibrated 3000-job SDSC SP2-like workload, default deadline model.
func DefaultBase() BaseConfig {
	return BaseConfig{
		Nodes:     workload.SDSCSP2Nodes,
		Rating:    workload.SDSCSP2Rating,
		Cluster:   cluster.DefaultConfig(),
		Generator: workload.DefaultGeneratorConfig(),
		Deadline:  workload.DefaultDeadlineConfig(),
	}
}

// RunSpec is one simulation: a policy, a workload variation, and an
// estimate inaccuracy level.
type RunSpec struct {
	Policy             PolicyKind
	ArrivalDelayFactor float64
	InaccuracyPct      float64
	Deadline           workload.DeadlineConfig
	// Faults configures the deterministic failure processes injected into
	// the run; the zero value injects nothing and provably changes
	// nothing. Only the EDF, Libra and LibraRisk policies have recovery
	// semantics; enabling faults with any other policy is an error.
	Faults fault.Config
	// Label names the study the spec belongs to (e.g. "figure3") so a
	// failed cell is identifiable from a one-line error; informational.
	Label string
	// Seed is the workload seed the cell runs under, recorded so a
	// failure in a multi-seed sweep names its seed; informational (the
	// jobs passed to Run/Sweep already embody it).
	Seed uint64
}

// Ident renders the spec's one-line identity for error and progress
// messages: label, policy, swept parameters, and seed when known.
func (s RunSpec) Ident() string {
	id := fmt.Sprintf("%s adf=%g inacc=%g urg=%g ratio=%g",
		s.Policy, s.ArrivalDelayFactor, s.InaccuracyPct,
		s.Deadline.HighUrgencyFraction, s.Deadline.Ratio)
	if s.Label != "" {
		id = s.Label + " " + id
	}
	if s.Seed != 0 {
		id += fmt.Sprintf(" seed=%d", s.Seed)
	}
	return id
}

// Run executes one simulation from pre-generated base jobs (before
// deadline assignment and arrival scaling) and returns its summary.
func Run(base BaseConfig, baseJobs []workload.Job, spec RunSpec) (metrics.Summary, error) {
	return RunContext(context.Background(), base, baseJobs, spec)
}

// RunContext is Run under a context: the simulation engine polls ctx
// between events, so cancellation aborts the run at event-loop
// granularity with a wrapped context error.
func RunContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job, spec RunSpec) (metrics.Summary, error) {
	s, _, err := RunInstrumentedContext(ctx, base, baseJobs, spec, 0)
	return s, err
}

// RunInstrumented is Run with optional cluster monitoring: when
// monitorInterval > 0 and the policy runs on a time-shared cluster, a
// core.Monitor samples it and is returned alongside the summary (nil
// otherwise). It also applies BaseConfig.CheckInvariants and RunSpec.Faults.
func RunInstrumented(base BaseConfig, baseJobs []workload.Job, spec RunSpec, monitorInterval float64) (metrics.Summary, *core.Monitor, error) {
	return RunInstrumentedContext(context.Background(), base, baseJobs, spec, monitorInterval)
}

// RunInstrumentedContext is RunInstrumented under a context. It always
// builds the run from scratch; sweeps route through runInstrumented with a
// per-worker scratch instead (see reuse.go).
func RunInstrumentedContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job, spec RunSpec, monitorInterval float64) (metrics.Summary, *core.Monitor, error) {
	return runInstrumented(ctx, base, baseJobs, spec, monitorInterval, nil, -1)
}

// installFaults validates fault support for the policy, defaults the
// horizon to the last (scaled) job arrival, and arms the injector. tr,
// when non-nil, receives a KindFault event per injected failure.
func installFaults(e *sim.Engine, cfg fault.Config, kind PolicyKind, ts *cluster.TimeShared, ss *cluster.SpaceShared, jobs []workload.Job, tr obs.Tracer) error {
	switch kind {
	case EDF, Libra, LibraRisk:
	default:
		return fmt.Errorf("experiment: policy %v has no failure-recovery semantics; faults require EDF, Libra or LibraRisk", kind)
	}
	if cfg.Horizon == 0 {
		for _, j := range jobs {
			if j.Submit > cfg.Horizon {
				cfg.Horizon = j.Submit
			}
		}
	}
	var surface fault.Cluster
	if ts != nil {
		surface = fault.Cluster{
			Nodes: ts.Len(),
			Down:  func(e *sim.Engine, id int, down bool) { ts.SetNodeDown(e, id, down) },
			Speed: ts.SetNodeSpeed,
		}
	} else {
		surface = fault.Cluster{
			Nodes: ss.Len(),
			Down:  func(e *sim.Engine, id int, down bool) { ss.SetNodeDown(e, id, down) },
			Speed: ss.SetNodeSpeed,
		}
	}
	inj, err := fault.New(cfg, surface)
	if err != nil {
		return err
	}
	if inj != nil {
		inj.Trace = tr
		inj.Install(e)
	}
	return nil
}

// buildPolicy constructs the policy and its execution substrate.
func buildPolicy(base BaseConfig, kind PolicyKind, rec *metrics.Recorder) (core.Policy, error) {
	p, _, _, err := buildPolicyClusters(base, kind, rec)
	return p, err
}

// buildPolicyClusters is buildPolicy exposing the concrete cluster handle
// (exactly one of the returned clusters is non-nil on success) so callers
// can wire monitors, fault injectors and invariant checkers.
func buildPolicyClusters(base BaseConfig, kind PolicyKind, rec *metrics.Recorder) (core.Policy, *cluster.TimeShared, *cluster.SpaceShared, error) {
	ratings := base.nodeRatings()
	switch kind {
	case EDF, FCFS, BackfillEASY, BackfillCons, QoPS:
		c, err := cluster.NewSpaceSharedHetero(ratings, base.Cluster)
		if err != nil {
			return nil, nil, nil, err
		}
		switch kind {
		case EDF:
			return core.NewEDF(c, rec), nil, c, nil
		case FCFS:
			return sched.NewFCFS(c, rec), nil, c, nil
		case BackfillEASY:
			return sched.NewBackfill(c, rec, sched.EASYBackfill), nil, c, nil
		case BackfillCons:
			return sched.NewBackfill(c, rec, sched.ConservativeBackfill), nil, c, nil
		default:
			slack := base.QoPSSlack
			if slack == 0 {
				slack = 2
			}
			return sched.NewQoPS(c, rec, slack), nil, c, nil
		}
	case Libra, LibraRisk:
		c, err := cluster.NewTimeSharedHetero(ratings, base.Cluster)
		if err != nil {
			return nil, nil, nil, err
		}
		if kind == Libra {
			p := core.NewLibra(c, rec)
			p.DisableFastPath = base.DisableFastPaths
			return p, c, nil, nil
		}
		p := core.NewLibraRisk(c, rec)
		p.DisableFastPath = base.DisableFastPaths
		return p, c, nil, nil
	default:
		return nil, nil, nil, fmt.Errorf("experiment: unknown policy %v", kind)
	}
}

// GenerateBase produces the shared base workload for a sweep.
func GenerateBase(base BaseConfig) ([]workload.Job, error) {
	return workload.Generate(base.Generator)
}
