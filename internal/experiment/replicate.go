package experiment

import (
	"fmt"
	"math"

	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Replicated holds the across-seed distribution of the two evaluation
// metrics for one spec: mean, sample standard deviation, and a 95 %
// confidence half-width (Student-t for small n).
type Replicated struct {
	Spec  RunSpec
	Seeds int

	FulfilledMean float64
	FulfilledStd  float64
	FulfilledCI95 float64

	SlowdownMean float64
	SlowdownStd  float64
	SlowdownCI95 float64
}

// tCrit95 are two-sided 95 % Student-t critical values by degrees of
// freedom (1-based index); beyond the table the normal 1.96 applies.
var tCrit95 = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086}

func tCritical(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < len(tCrit95) {
		return tCrit95[df]
	}
	return 1.96
}

// RunReplicated executes the spec across the given workload seeds (each
// seed regenerates the base workload and the deadline stream) and returns
// the metric distribution. At least one seed is required; confidence
// intervals need at least two.
func RunReplicated(base BaseConfig, spec RunSpec, seeds []uint64) (Replicated, error) {
	if len(seeds) == 0 {
		return Replicated{}, fmt.Errorf("experiment: no seeds")
	}
	specs := make([]RunSpec, len(seeds))
	bases := make([][]workload.Job, len(seeds))
	for i, seed := range seeds {
		gen := base.Generator
		gen.Seed = seed
		jobs, err := workload.Generate(gen)
		if err != nil {
			return Replicated{}, err
		}
		bases[i] = jobs
		s := spec
		s.Deadline.Seed = seed + 1000003 // decouple deadline stream per seed
		s.Seed = seed                    // stamp the cell identity for error messages
		specs[i] = s
	}
	// Replications are independent simulations; run them through the same
	// worker pool the sweeps use, one result per seed.
	results := make([]metrics.Summary, len(seeds))
	for i := range seeds {
		s, err := Run(base, bases[i], specs[i])
		if err != nil {
			return Replicated{}, fmt.Errorf("experiment: %s: %w", specs[i].Ident(), err)
		}
		results[i] = s
	}
	out := Replicated{Spec: spec, Seeds: len(seeds)}
	out.FulfilledMean, out.FulfilledStd, out.FulfilledCI95 = meanStdCI(results, func(s metrics.Summary) float64 { return s.PctFulfilled })
	out.SlowdownMean, out.SlowdownStd, out.SlowdownCI95 = meanStdCI(results, func(s metrics.Summary) float64 { return s.AvgSlowdownMet })
	return out, nil
}

func meanStdCI(results []metrics.Summary, get func(metrics.Summary) float64) (mean, std, ci float64) {
	n := len(results)
	for _, r := range results {
		mean += get(r)
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0, 0
	}
	var sq float64
	for _, r := range results {
		d := get(r) - mean
		sq += d * d
	}
	std = math.Sqrt(sq / float64(n-1))
	ci = tCritical(n-1) * std / math.Sqrt(float64(n))
	return mean, std, ci
}

// SeedsFrom returns n deterministic workload seeds derived from start.
func SeedsFrom(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)*7919 // spaced primes avoid adjacent-seed artefacts
	}
	return out
}
