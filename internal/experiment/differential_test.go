package experiment

import (
	"testing"
)

// TestFastPathsMatchReferenceAtPaperScale is the tentpole differential
// test: full paper-scale simulations (128 nodes, 3000 jobs, trace
// estimates) with every admission fast path enabled must produce
// byte-identical summaries to the reference configuration — naive
// allocate-per-call fluid predictor, no FirstFit early exit, no share
// early-abort, no baseline caching. metrics.Summary is all scalar fields,
// so plain == is an exact comparison of every headline number the paper
// reports.
func TestFastPathsMatchReferenceAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale differential sims in -short mode")
	}
	base := DefaultBase()
	// Ride the invariant checker along: every paper-scale run below
	// re-validates job conservation and cluster structure after each
	// event, and any violation fails the run.
	// (TestZeroFaultRateIsExactlyNoFault separately proves the checker
	// changes no result.)
	base.CheckInvariants = true
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []PolicyKind{EDF, Libra, LibraRisk} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for _, inacc := range []float64{0, 100} {
				spec := RunSpec{
					Policy:        kind,
					InaccuracyPct: inacc,
					Deadline:      base.Deadline,
				}
				fast, err := Run(base, jobs, spec)
				if err != nil {
					t.Fatal(err)
				}
				ref := base
				ref.DisableFastPaths = true
				ref.Cluster.NaivePredictor = true
				slow, err := Run(ref, jobs, spec)
				if err != nil {
					t.Fatal(err)
				}
				if fast != slow {
					t.Errorf("inaccuracy %g%%: summaries diverge\nfast %+v\nref  %+v", inacc, fast, slow)
				}
			}
		})
	}
}
