package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SVG rendering of figures: dependency-free line charts, one panel per
// chart, laid out in a 2×2 grid per figure, matching the paper's layout.

// svgPalette assigns each policy its line colour; extras cycle.
var svgPalette = map[string]string{
	"EDF":          "#d62728",
	"Libra":        "#1f77b4",
	"LibraRisk":    "#2ca02c",
	"FCFS":         "#7f7f7f",
	"EASY":         "#9467bd",
	"Conservative": "#8c564b",
	"QoPS":         "#e377c2",
}

var svgFallback = []string{"#17becf", "#bcbd22", "#ff7f0e", "#aec7e8"}

func seriesColor(name string, idx int) string {
	if c, ok := svgPalette[name]; ok {
		return c
	}
	return svgFallback[idx%len(svgFallback)]
}

// panel geometry in pixels.
const (
	svgPanelW   = 460
	svgPanelH   = 320
	svgMarginL  = 62
	svgMarginR  = 14
	svgMarginT  = 40
	svgMarginB  = 46
	svgLegendDY = 16
)

// WriteFigureSVG renders the figure as a standalone SVG document with the
// panels in two columns.
func WriteFigureSVG(w io.Writer, f Figure) error {
	cols := 2
	rows := (len(f.Panels) + cols - 1) / cols
	if rows == 0 {
		rows = 1
	}
	width := cols * svgPanelW
	height := rows*svgPanelH + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">%s: %s</text>`+"\n",
		width/2, xmlEscape(f.ID), xmlEscape(f.Title))
	for i, p := range f.Panels {
		x := (i % cols) * svgPanelW
		y := 30 + (i/cols)*svgPanelH
		fmt.Fprintf(&b, `<g transform="translate(%d,%d)">`+"\n", x, y)
		renderPanelSVG(&b, p)
		b.WriteString("</g>\n")
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func renderPanelSVG(b *strings.Builder, p Panel) {
	plotW := svgPanelW - svgMarginL - svgMarginR
	plotH := svgPanelH - svgMarginT - svgMarginB
	// Panel title.
	fmt.Fprintf(b, `<text x="%d" y="16" text-anchor="middle" font-family="sans-serif" font-size="11">%s</text>`+"\n",
		svgPanelW/2, xmlEscape(p.Name))
	if len(p.X) == 0 {
		return
	}
	xlo, xhi := p.X[0], p.X[len(p.X)-1]
	if xhi-xlo < 1e-12 {
		xhi = xlo + 1
	}
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			ylo = math.Min(ylo, y)
			yhi = math.Max(yhi, y)
		}
	}
	if math.IsInf(ylo, 1) {
		ylo, yhi = 0, 1
	}
	if yhi-ylo < 1e-12 {
		yhi = ylo + 1
	}
	// A little headroom.
	pad := (yhi - ylo) * 0.06
	ylo -= pad
	yhi += pad
	px := func(x float64) float64 {
		return svgMarginL + (x-xlo)/(xhi-xlo)*float64(plotW)
	}
	py := func(y float64) float64 {
		return svgMarginT + (1-(y-ylo)/(yhi-ylo))*float64(plotH)
	}
	// Axes box and gridlines with tick labels.
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#444" stroke-width="1"/>`+"\n",
		svgMarginL, svgMarginT, plotW, plotH)
	for i := 0; i <= 4; i++ {
		fy := ylo + (yhi-ylo)*float64(i)/4
		yy := py(fy)
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd" stroke-width="0.5"/>`+"\n",
			svgMarginL, yy, svgMarginL+plotW, yy)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="9">%s</text>`+"\n",
			svgMarginL-4, yy+3, trimFloat(fy))
	}
	for _, x := range p.X {
		xx := px(x)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#eee" stroke-width="0.5"/>`+"\n",
			xx, svgMarginT, xx, svgMarginT+plotH)
		fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle" font-family="sans-serif" font-size="9">%s</text>`+"\n",
			xx, svgMarginT+plotH+12, trimFloat(x))
	}
	// Axis labels.
	fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="10">%s</text>`+"\n",
		svgMarginL+plotW/2, svgPanelH-10, xmlEscape(p.XLabel))
	fmt.Fprintf(b, `<text x="12" y="%d" text-anchor="middle" font-family="sans-serif" font-size="10" transform="rotate(-90 12 %d)">%s</text>`+"\n",
		svgMarginT+plotH/2, svgMarginT+plotH/2, xmlEscape(p.YLabel))
	// Series polylines with point markers.
	for si, s := range p.Series {
		color := seriesColor(s.Name, si)
		var pts []string
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p.X[i]), py(y)))
		}
		if len(pts) > 1 {
			fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, pt := range pts {
			fmt.Fprintf(b, `<circle cx="%s" cy="%s" r="2.2" fill="%s"/>`+"\n",
				strings.Split(pt, ",")[0], strings.Split(pt, ",")[1], color)
		}
		// Legend entry.
		ly := svgMarginT + 8 + si*svgLegendDY
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			svgMarginL+8, ly, svgMarginL+26, ly, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="sans-serif" font-size="9">%s</text>`+"\n",
			svgMarginL+30, ly+3, xmlEscape(s.Name))
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
