package experiment

import (
	"testing"

	"clustersched/internal/workload"
)

func predBase() BaseConfig {
	base := testBase()
	base.Generator.Jobs = 250
	base.Generator.Users = workload.DefaultUserModelConfig()
	return base
}

func TestRunWithPredictorIdentityMatchesPlainRun(t *testing.T) {
	base := predBase()
	jobs, err := workload.Generate(base.Generator)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}
	plain, err := Run(base, jobs, spec)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := RunWithPredictor(base, jobs, spec, "user-estimate")
	if err != nil {
		t.Fatal(err)
	}
	if plain != wrapped {
		t.Fatalf("identity predictor changed the outcome:\n%+v\n%+v", plain, wrapped)
	}
}

func TestRunWithPredictorUnknownEstimator(t *testing.T) {
	base := predBase()
	jobs, err := workload.Generate(base.Generator)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}
	if _, err := RunWithPredictor(base, jobs, spec, "oracle"); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestPredictionHelpsLibra(t *testing.T) {
	// The extension's point: learned estimates should lift Libra's
	// fulfilled percentage under fully inaccurate user estimates.
	base := predBase()
	base.Generator.Jobs = 500
	jobs, err := workload.Generate(base.Generator)
	if err != nil {
		t.Fatal(err)
	}
	spec := RunSpec{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}
	baseRun, err := RunWithPredictor(base, jobs, spec, "user-estimate")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := RunWithPredictor(base, jobs, spec, "scaling")
	if err != nil {
		t.Fatal(err)
	}
	if scaled.PctFulfilled <= baseRun.PctFulfilled {
		t.Errorf("scaling predictor %.1f%% should beat raw user estimates %.1f%%",
			scaled.PctFulfilled, baseRun.PctFulfilled)
	}
}

func TestFigurePredictionShape(t *testing.T) {
	base := predBase()
	base.Generator.Jobs = 120
	f, err := FigurePrediction(base)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "prediction" || len(f.Panels) != 4 {
		t.Fatalf("figure = %q with %d panels", f.ID, len(f.Panels))
	}
	for _, p := range f.Panels {
		if len(p.Series) != len(EstimatorNames) {
			t.Fatalf("panel %q series = %d", p.Name, len(p.Series))
		}
		for _, s := range p.Series {
			if len(s.Y) != len(p.X) {
				t.Fatalf("series %q length mismatch", s.Name)
			}
		}
	}
}
