package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"clustersched/internal/checkpoint"
	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Result pairs a spec with its summary.
type Result struct {
	Spec    RunSpec
	Summary metrics.Summary
	Err     error
	// FromJournal marks a cell satisfied from the checkpoint journal
	// instead of being run.
	FromJournal bool
}

// FailureKind classifies why a supervised run failed.
type FailureKind string

// The failure taxonomy. Panics and watchdog timeouts are treated as
// potentially transient and retried once with the same seed (the
// simulation is a pure function of its inputs, so a retry that succeeds
// is the correct result); cancellation and engine errors are not.
const (
	// FailPanic: the run panicked and was contained by the worker.
	FailPanic FailureKind = "panic"
	// FailTimeout: the run exceeded BaseConfig.RunTimeout.
	FailTimeout FailureKind = "timeout"
	// FailCanceled: the sweep's context was canceled (e.g. SIGINT).
	FailCanceled FailureKind = "canceled"
	// FailEngine: the simulation itself reported an error.
	FailEngine FailureKind = "engine"
)

// RunError is the structured failure of one supervised sweep cell.
type RunError struct {
	Spec     RunSpec
	Stage    string // "admission" | "simulate" | "journal"
	Kind     FailureKind
	Attempts int    // attempts made, including the failed one (0 = never started)
	Stack    []byte // panic stack trace, FailPanic only
	Cause    error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("%s: %s at stage %s (attempt %d): %v",
		e.Spec.Ident(), e.Kind, e.Stage, e.Attempts, e.Cause)
}

func (e *RunError) Unwrap() error { return e.Cause }

// maxAttempts bounds the supervised retry: the first attempt plus one
// same-seed retry for transient failures.
const maxAttempts = 2

// classify maps an attempt error onto the failure taxonomy.
func classify(err error) FailureKind {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.Is(err, context.Canceled):
		return FailCanceled
	default:
		return FailEngine
	}
}

// testFailHook, when non-nil, runs at the top of every supervised attempt
// (after the panic guard is armed); tests use it to stand in for a
// panicking or transiently failing policy.
var testFailHook func(spec RunSpec, attempt int)

// cellFunc executes one simulation attempt; the float64 is an optional
// sweep-specific aggregate (the chaos sweep's mean σ, 0 elsewhere).
type cellFunc func(ctx context.Context) (metrics.Summary, float64, error)

// runAttempt executes one attempt of one cell with the panic guard armed
// and the per-run watchdog applied.
func runAttempt(ctx context.Context, base BaseConfig, spec RunSpec, attempt int, fn cellFunc) (sum metrics.Summary, extra float64, err error) {
	runCtx := ctx
	if base.RunTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, base.RunTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &RunError{
				Spec: spec, Stage: "simulate", Kind: FailPanic, Attempts: attempt,
				Stack: debug.Stack(), Cause: fmt.Errorf("panic: %v", r),
			}
		}
	}()
	if hook := testFailHook; hook != nil {
		hook(spec, attempt)
	}
	return fn(runCtx)
}

// superviseCell is the supervision contract for one cell: attempt the
// run, contain panics, classify failures, and retry transient ones
// (panic, watchdog timeout) exactly once with the same seed so
// determinism is preserved. The returned error, if any, is always a
// *RunError.
func superviseCell(ctx context.Context, base BaseConfig, spec RunSpec, fn cellFunc) (metrics.Summary, float64, error) {
	var last *RunError
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return metrics.Summary{}, 0, &RunError{
				Spec: spec, Stage: "admission", Kind: FailCanceled,
				Attempts: attempt - 1, Cause: err,
			}
		}
		sum, extra, err := runAttempt(ctx, base, spec, attempt, fn)
		if err == nil {
			return sum, extra, nil
		}
		if !errors.As(err, &last) {
			last = &RunError{
				Spec: spec, Stage: "simulate", Kind: classify(err),
				Attempts: attempt, Cause: err,
			}
		}
		if last.Kind != FailPanic && last.Kind != FailTimeout {
			break // deterministic or canceled: a retry cannot help
		}
	}
	return metrics.Summary{}, 0, last
}

// runCell supervises one plain (monitor-less) sweep cell, reusing the
// worker's scratch when one is provided and clean. The acquire/release
// pair is what keeps the supervised retry safe: a panicking attempt never
// reaches release, so the retry (and every later cell on the worker) runs
// on the fresh-build path instead of a half-mutated scratch.
func runCell(ctx context.Context, base BaseConfig, baseJobs []workload.Job, spec RunSpec, sc *runScratch, cell int) (metrics.Summary, error) {
	sum, _, err := superviseCell(ctx, base, spec, func(runCtx context.Context) (metrics.Summary, float64, error) {
		use := sc.acquire()
		s, _, err := runInstrumented(runCtx, base, baseJobs, spec, 0, use, cell)
		use.release()
		return s, 0, err
	})
	return sum, err
}

// workerCount clamps the configured sweep parallelism to the work at hand.
func (b BaseConfig) workerCount(n int) int {
	w := b.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// newProgressCounter wraps a Progress callback so deliveries are
// serialized and stamped with the sweep-level Done/Total counters.
func newProgressCounter(fn func(ProgressEvent), total int) func(ProgressEvent) {
	var mu sync.Mutex
	done := 0
	return func(ev ProgressEvent) {
		mu.Lock()
		done++
		ev.Done, ev.Total = done, total
		fn(ev)
		mu.Unlock()
	}
}

// runPool dispatches indices [0, n) to a bounded worker pool, stops
// admitting new indices once ctx is done, and drains in-flight work
// before returning. fn receives the worker index w alongside the work
// index i so callers can attach per-worker state (the reuse scratches);
// each w is owned by exactly one goroutine.
func runPool(ctx context.Context, n, workers int, fn func(w, i int)) {
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				fn(w, i)
			}
		}(w)
	}
admit:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break admit
		case work <- i:
		}
	}
	close(work)
	wg.Wait()
}

// Sweep runs every spec against the shared base workload, fanning out over
// a bounded worker pool. Results are returned in spec order regardless of
// completion order; individual failures are captured per result rather
// than aborting the sweep.
func Sweep(base BaseConfig, baseJobs []workload.Job, specs []RunSpec) []Result {
	return SweepContext(context.Background(), base, baseJobs, specs)
}

// SweepContext is Sweep under supervision: each cell runs with a panic
// guard, the per-run watchdog, and a single same-seed retry for transient
// failures; completed cells are checkpointed to BaseConfig.Journal (and
// journaled cells are reused instead of re-run); BaseConfig.Progress is
// told about every finished cell; and cancelling ctx stops admission of
// new cells, aborts in-flight runs at event-loop granularity, and marks
// every unfinished cell with a FailCanceled *RunError. The journal is
// consistent on disk after every append, so there is nothing further to
// flush on cancellation.
func SweepContext(ctx context.Context, base BaseConfig, baseJobs []workload.Job, specs []RunSpec) []Result {
	if len(specs) == 0 {
		// Nothing to do: skip the pool machinery entirely.
		return []Result{}
	}
	results := make([]Result, len(specs))
	finished := make([]bool, len(specs))
	var digest string
	if base.Journal != nil {
		digest = WorkloadDigest(baseJobs)
	}
	report := func(int) {}
	if base.Progress != nil {
		prog := newProgressCounter(base.Progress, len(specs))
		report = func(i int) {
			prog(ProgressEvent{
				Spec: specs[i], FromJournal: results[i].FromJournal, Err: results[i].Err,
			})
		}
	}
	workers := base.workerCount(len(specs))
	scratches := newScratchPool(base, workers)
	runPool(ctx, len(specs), workers, func(w, i int) {
		spec := specs[i]
		var key string
		if base.Journal != nil {
			k, err := CellKey(base, spec, digest)
			if err != nil {
				results[i] = Result{Spec: spec, Err: &RunError{
					Spec: spec, Stage: "journal", Kind: FailEngine, Attempts: 0, Cause: err,
				}}
				finished[i] = true
				report(i)
				return
			}
			key = k
			if rec, ok := base.Journal.Lookup(key); ok {
				results[i] = Result{Spec: spec, Summary: rec.Summary, FromJournal: true}
				finished[i] = true
				report(i)
				return
			}
		}
		sum, err := runCell(ctx, base, baseJobs, spec, scratchFor(scratches, w), i)
		results[i] = Result{Spec: spec, Summary: sum, Err: err}
		if err == nil && base.Journal != nil {
			if jerr := base.Journal.Append(checkpoint.Record{Key: key, Label: spec.Label, Summary: sum}); jerr != nil {
				results[i].Err = &RunError{
					Spec: spec, Stage: "journal", Kind: FailEngine, Attempts: 1, Cause: jerr,
				}
			}
		}
		finished[i] = true
		report(i)
	})
	// Cells never admitted (cancellation stopped the pool) must not look
	// like successful empty runs.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !finished[i] {
				results[i] = Result{Spec: specs[i], Err: &RunError{
					Spec: specs[i], Stage: "admission", Kind: FailCanceled,
					Attempts: 0, Cause: err,
				}}
			}
		}
	}
	return results
}

// FirstError returns the first failure in a sweep, if any, identified by
// the cell's label, policy, swept parameters and seed.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			var re *RunError
			if errors.As(r.Err, &re) {
				// RunError already carries the full cell identity.
				return fmt.Errorf("experiment: %w", re)
			}
			return fmt.Errorf("experiment: %s: %w", r.Spec.Ident(), r.Err)
		}
	}
	return nil
}
