package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Result pairs a spec with its summary.
type Result struct {
	Spec    RunSpec
	Summary metrics.Summary
	Err     error
}

// Sweep runs every spec against the shared base workload, fanning out over
// a bounded worker pool. Results are returned in spec order regardless of
// completion order; individual failures are captured per result rather
// than aborting the sweep.
func Sweep(base BaseConfig, baseJobs []workload.Job, specs []RunSpec) []Result {
	workers := base.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]Result, len(specs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				s, err := Run(base, baseJobs, specs[i])
				results[i] = Result{Spec: specs[i], Summary: s, Err: err}
			}
		}()
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}

// FirstError returns the first failure in a sweep, if any.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("experiment: %s adf=%g inacc=%g: %w",
				r.Spec.Policy, r.Spec.ArrivalDelayFactor, r.Spec.InaccuracyPct, r.Err)
		}
	}
	return nil
}
