package experiment

import (
	"context"
	"reflect"
	"testing"

	"clustersched/internal/workload"
)

// reuseSpecs builds a sweep that makes the per-worker scratches work hard:
// every resettable policy is visited several times (so the cached policy
// contexts carry real cross-cell state), plus non-resettable extension
// policies (rebuilt fresh each run) and a faulted cell interleaved so a
// scratch must recover from fault-injected runs too.
func reuseSpecs(base BaseConfig) []RunSpec {
	var specs []RunSpec
	for _, adf := range []float64{1, 0.7, 0.5} {
		for _, pol := range AllPolicies {
			specs = append(specs, RunSpec{
				Policy: pol, ArrivalDelayFactor: adf, InaccuracyPct: 100, Deadline: base.Deadline,
			})
		}
	}
	specs = append(specs,
		RunSpec{Policy: FCFS, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline},
		RunSpec{Policy: QoPS, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline},
		RunSpec{Policy: LibraRisk, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline,
			Faults: ChaosFaultConfig(1, 42)},
		RunSpec{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline},
	)
	return specs
}

// TestSweepReuseMatchesDisableReuse is the reuse layer's differential
// acceptance test: the same sweep with reused per-worker run contexts and
// with DisableReuse (every cell built from scratch) must produce
// byte-identical summaries. Workers > 1 so, under -race, it also proves
// the scratches are properly confined to their worker goroutines.
func TestSweepReuseMatchesDisableReuse(t *testing.T) {
	base := testBase()
	base.Workers = 3
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := reuseSpecs(base)
	reused := Sweep(base, jobs, specs)
	if err := FirstError(reused); err != nil {
		t.Fatal(err)
	}
	fresh := base
	fresh.DisableReuse = true
	baseline := Sweep(fresh, jobs, specs)
	if err := FirstError(baseline); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if reused[i].Summary != baseline[i].Summary {
			t.Errorf("spec %d (%s): reused %+v != fresh %+v",
				i, specs[i].Ident(), reused[i].Summary, baseline[i].Summary)
		}
	}
}

// TestChaosSweepReuseMatchesDisableReuse extends the differential to the
// instrumented path: monitors, fault injection and the mean-σ aggregate
// must be untouched by context reuse.
func TestChaosSweepReuseMatchesDisableReuse(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 200
	base.Workers = 2
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	reused := ChaosSweep(base, jobs)
	fresh := base
	fresh.DisableReuse = true
	baseline := ChaosSweep(fresh, jobs)
	for i := range reused {
		if reused[i].Err != nil {
			t.Fatalf("point %d (%v rate=%g): %v", i, reused[i].Policy, reused[i].FailuresPerDay, reused[i].Err)
		}
		if !reflect.DeepEqual(reused[i], baseline[i]) {
			t.Errorf("point %d diverges:\nreused %+v\nfresh  %+v", i, reused[i], baseline[i])
		}
	}
}

// TestAllFiguresIdenticalWithReuseDisabled replays the full figure set
// (reduced scale) both ways: reuse must be invisible in every panel of
// every figure.
func TestAllFiguresIdenticalWithReuseDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure grid in -short mode")
	}
	base := testBase()
	base.Generator.Jobs = 150
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := AllFiguresFrom(base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	fresh := base
	fresh.DisableReuse = true
	baseline, err := AllFiguresFrom(fresh, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reused, baseline) {
		t.Fatal("figures diverge between reused and fresh run contexts")
	}
}

// allAdmittedJobs builds a workload no policy can reject: singleton jobs
// arriving after the previous one has certainly finished, so every
// admission test sees an (almost) empty cluster. Rejections are the one
// event that allocates on the run path (the reason string), so the
// zero-allocation test needs a workload with none.
func allAdmittedJobs(n int) []workload.Job {
	jobs := make([]workload.Job, n)
	for i := range jobs {
		jobs[i] = workload.Job{
			ID:            i + 1,
			Submit:        float64(i) * 200,
			Runtime:       50,
			TraceEstimate: 60,
			NumProc:       1,
		}
	}
	return jobs
}

// BenchmarkReusedSweepCell measures one warm sweep cell through a reused
// scratch — the steady-state unit of every sweep. Run with -benchmem; the
// allocs/op column must stay at 0 (the alloc test below enforces it).
func BenchmarkReusedSweepCell(b *testing.B) {
	base := DefaultBase()
	base.Nodes = 4
	jobs := allAdmittedJobs(64)
	sc := newRunScratch()
	ctx := context.Background()
	spec := RunSpec{Policy: LibraRisk, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline}
	if _, _, err := runInstrumented(ctx, base, jobs, spec, 0, sc, -1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := runInstrumented(ctx, base, jobs, spec, 0, sc, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunScratchSteadyStateAllocationFree is the tentpole's acceptance
// test: once a worker's scratch is warm, running another sweep cell
// through it must perform zero heap allocations — the engine recycles
// events through its freelist, the recorder and clusters re-fill retained
// storage, and the job slice is transformed in place.
func TestRunScratchSteadyStateAllocationFree(t *testing.T) {
	base := DefaultBase()
	base.Nodes = 4
	jobs := allAdmittedJobs(64)
	sc := newRunScratch()
	ctx := context.Background()
	for _, pol := range AllPolicies {
		spec := RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline}
		run := func() {
			sum, _, err := runInstrumented(ctx, base, jobs, spec, 0, sc, -1)
			if err != nil {
				t.Fatal(err)
			}
			if sum.Submitted != len(jobs) || sum.Rejected != 0 || sum.Unfinished != 0 {
				t.Fatalf("%v: not all jobs admitted: %+v", pol, sum)
			}
		}
		run() // warm the scratch: first run per policy builds and caches
		run() // second run settles any lazily grown storage
		if n := testing.AllocsPerRun(10, run); n != 0 {
			t.Errorf("%v: %.1f allocs per run on a warm scratch, want 0", pol, n)
		}
	}
}
