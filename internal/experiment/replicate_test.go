package experiment

import (
	"math"
	"testing"
)

func TestRunReplicatedBasics(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 150
	spec := RunSpec{Policy: LibraRisk, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}
	rep, err := RunReplicated(base, spec, SeedsFrom(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeds != 5 {
		t.Fatalf("Seeds = %d", rep.Seeds)
	}
	if rep.FulfilledMean <= 0 || rep.FulfilledMean > 100 {
		t.Fatalf("FulfilledMean = %v", rep.FulfilledMean)
	}
	if rep.FulfilledStd < 0 || rep.FulfilledCI95 < 0 {
		t.Fatalf("negative spread: %+v", rep)
	}
	// With distinct seeds some variation is expected.
	if rep.FulfilledStd == 0 {
		t.Fatal("zero variance across distinct seeds is implausible")
	}
	if rep.SlowdownMean < 1 {
		t.Fatalf("SlowdownMean = %v", rep.SlowdownMean)
	}
	// CI95 should exceed the standard error but stay proportionate.
	se := rep.FulfilledStd / math.Sqrt(5)
	if rep.FulfilledCI95 < se || rep.FulfilledCI95 > 13*se {
		t.Fatalf("CI95 = %v vs SE %v", rep.FulfilledCI95, se)
	}
}

func TestRunReplicatedSingleSeedNoCI(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 100
	spec := RunSpec{Policy: EDF, ArrivalDelayFactor: 1, InaccuracyPct: 0, Deadline: base.Deadline}
	rep, err := RunReplicated(base, spec, []uint64{42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FulfilledStd != 0 || rep.FulfilledCI95 != 0 {
		t.Fatalf("single seed should have zero spread: %+v", rep)
	}
}

func TestRunReplicatedNoSeeds(t *testing.T) {
	if _, err := RunReplicated(testBase(), RunSpec{Policy: EDF, Deadline: DefaultBase().Deadline}, nil); err == nil {
		t.Fatal("no seeds accepted")
	}
}

func TestRunReplicatedDeterministic(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 100
	spec := RunSpec{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}
	a, err := RunReplicated(base, spec, SeedsFrom(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplicated(base, spec, SeedsFrom(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replication not deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedsFrom(t *testing.T) {
	s := SeedsFrom(10, 4)
	if len(s) != 4 || s[0] != 10 {
		t.Fatalf("SeedsFrom = %v", s)
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate seed in %v", s)
		}
		seen[v] = true
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsNaN(tCritical(0)) {
		t.Fatal("df=0 should be NaN")
	}
	if got := tCritical(1); got != 12.706 {
		t.Fatalf("t(1) = %v", got)
	}
	if got := tCritical(100); got != 1.96 {
		t.Fatalf("t(100) = %v", got)
	}
	// Monotone decreasing over the table.
	prev := math.Inf(1)
	for df := 1; df <= 20; df++ {
		v := tCritical(df)
		if v > prev {
			t.Fatalf("t not decreasing at df=%d", df)
		}
		prev = v
	}
}

// TestReplicatedHeadlineHoldsAcrossSeeds is the statistical version of the
// shape test: LibraRisk's advantage over Libra under trace estimates must
// not be a single-seed artefact.
func TestReplicatedHeadlineHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed test skipped in -short mode")
	}
	base := testBase()
	seeds := SeedsFrom(1, 5)
	libra, err := RunReplicated(base, RunSpec{Policy: Libra, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	risk, err := RunReplicated(base, RunSpec{Policy: LibraRisk, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Non-overlapping confidence intervals.
	if risk.FulfilledMean-risk.FulfilledCI95 <= libra.FulfilledMean+libra.FulfilledCI95 {
		t.Errorf("LibraRisk %0.1f±%0.1f vs Libra %0.1f±%0.1f: intervals overlap",
			risk.FulfilledMean, risk.FulfilledCI95, libra.FulfilledMean, libra.FulfilledCI95)
	}
}
