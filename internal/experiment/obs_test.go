package experiment

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"clustersched/internal/obs"
)

// TestObservabilityDifferential is the obs layer's acceptance test:
// the same sweep with every observability layer armed and with none must
// produce byte-identical summaries — recording can never perturb a
// scheduling decision. Workers > 1 so, under -race, it also proves the
// per-run bundles and the sweep-level merge are properly synchronized.
func TestObservabilityDifferential(t *testing.T) {
	base := testBase()
	base.Workers = 3
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := reuseSpecs(base)
	baseline := Sweep(base, jobs, specs)
	if err := FirstError(baseline); err != nil {
		t.Fatal(err)
	}
	observed := base
	observed.Obs = obs.NewSweep(obs.Options{Trace: true, Metrics: true, Audit: true})
	withObs := Sweep(observed, jobs, specs)
	if err := FirstError(withObs); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if baseline[i].Summary != withObs[i].Summary {
			t.Errorf("spec %d (%s): observability changed the result:\noff %+v\non  %+v",
				i, specs[i].Ident(), baseline[i].Summary, withObs[i].Summary)
		}
	}

	events := observed.Obs.Events()
	decisions := observed.Obs.Decisions()
	if len(events) == 0 || len(decisions) == 0 {
		t.Fatalf("observed sweep recorded %d events, %d decisions; want both > 0", len(events), len(decisions))
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool {
		if events[i].Run != events[j].Run {
			return events[i].Run < events[j].Run
		}
		return events[i].Seq < events[j].Seq
	}) {
		t.Error("merged events not sorted by (run, seq)")
	}

	// The audit log and the trace are emitted from the same code paths, so
	// they must agree decision for decision, and the audit's reject count
	// must equal the recorders' total.
	evAdmits, evRejects := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindAdmit:
			evAdmits++
		case obs.KindReject:
			evRejects++
		}
	}
	auAdmits, auRejects := 0, 0
	for _, d := range decisions {
		if d.Accepted {
			auAdmits++
		} else {
			auRejects++
		}
	}
	if evAdmits != auAdmits || evRejects != auRejects {
		t.Errorf("trace (%d admits, %d rejects) disagrees with audit (%d, %d)",
			evAdmits, evRejects, auAdmits, auRejects)
	}
	// Per-cell exactness: for every cell of a core policy (the extension
	// policies implement no audit surface) without faults (a killed job's
	// resubmission may be rejected — audited, but outside Summary.Rejected's
	// submission decomposition), the audited rejection count must equal the
	// recorder's exactly.
	core := map[PolicyKind]bool{EDF: true, Libra: true, LibraRisk: true}
	byRun := map[string]int{}
	for _, d := range decisions {
		if !d.Accepted && !d.Resubmit {
			byRun[d.Run]++
		}
	}
	for i, spec := range specs {
		if spec.Faults.Enabled() || !core[spec.Policy] {
			continue
		}
		tag := runTag(i, spec)
		if byRun[tag] != withObs[i].Summary.Rejected {
			t.Errorf("%s: %d audited rejections != %d recorded", tag, byRun[tag], withObs[i].Summary.Rejected)
		}
	}

	// Every LibraRisk risk rejection must carry the per-node evaluation
	// that justified it, σ included.
	sawRiskReject := false
	for _, d := range decisions {
		if d.Policy != "LibraRisk" || d.Accepted || !strings.Contains(d.Reason, "zero risk") {
			continue
		}
		sawRiskReject = true
		if len(d.Nodes) == 0 {
			t.Fatalf("risk rejection of job %d in %s has no node evaluations", d.Job, d.Run)
		}
		unsuitable := 0
		for _, ev := range d.Nodes {
			if !ev.Suitable && !ev.Down && ev.Sigma <= 0 {
				t.Errorf("job %d in %s: node %d unsuitable but σ=%g", d.Job, d.Run, ev.Node, ev.Sigma)
			}
			if !ev.Suitable {
				unsuitable++
			}
		}
		if unsuitable == 0 {
			t.Errorf("risk rejection of job %d in %s lists no unsuitable node", d.Job, d.Run)
		}
	}
	if !sawRiskReject {
		t.Error("sweep produced no LibraRisk risk rejection to audit; scale the workload up")
	}

	// The merged export surfaces must round-trip / validate.
	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, events); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(&chrome); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	var prom bytes.Buffer
	if err := observed.Obs.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"sim_jobs_submitted_total", "sim_jobs_rejected_total", "sim_admission_risk_sigma_bucket"} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("prometheus export missing %s", metric)
		}
	}
	var audit bytes.Buffer
	if err := obs.WriteAuditJSONL(&audit, decisions); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadAuditJSONL(&audit)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(decisions) {
		t.Errorf("audit round-trip: %d decisions became %d", len(decisions), len(back))
	}
}

// TestObservabilityDeterministicAcrossWorkers pins the merge contract:
// the same observed sweep at 1 and at 4 workers yields identical events,
// decisions and metrics, regardless of completion interleaving.
func TestObservabilityDeterministicAcrossWorkers(t *testing.T) {
	base := testBase()
	base.Generator.Jobs = 200
	jobs, err := GenerateBase(base)
	if err != nil {
		t.Fatal(err)
	}
	specs := reuseSpecs(base)
	render := func(workers int) (string, string, string) {
		b := base
		b.Workers = workers
		b.Obs = obs.NewSweep(obs.Options{Trace: true, Metrics: true, Audit: true})
		if err := FirstError(Sweep(b, jobs, specs)); err != nil {
			t.Fatal(err)
		}
		var ev, au, pr bytes.Buffer
		if err := obs.WriteJSONL(&ev, b.Obs.Events()); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteAuditJSONL(&au, b.Obs.Decisions()); err != nil {
			t.Fatal(err)
		}
		if err := b.Obs.Registry().WritePrometheus(&pr); err != nil {
			t.Fatal(err)
		}
		return ev.String(), au.String(), pr.String()
	}
	ev1, au1, pr1 := render(1)
	ev4, au4, pr4 := render(4)
	if ev1 != ev4 {
		t.Error("trace events differ between 1 and 4 workers")
	}
	if au1 != au4 {
		t.Error("audit decisions differ between 1 and 4 workers")
	}
	if pr1 != pr4 {
		t.Error("merged metrics differ between 1 and 4 workers")
	}
}
