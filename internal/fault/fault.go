// Package fault injects deterministic, seeded failure processes into a
// running cluster simulation: per-node crash/recovery cycles, transient
// straggler slowdowns, and optional correlated multi-node outages.
//
// Every stochastic decision is drawn from dedicated sim.RNG streams — one
// per fault process per node — so a failure trace is a pure function of
// (seed, config) regardless of how the rest of the simulation interleaves
// with it, and a zero-valued Config draws no random numbers at all: the
// fault layer is provably a no-op when disabled (see TestZeroFaultNoOp).
package fault

import (
	"fmt"
	"math"

	"clustersched/internal/obs"
	"clustersched/internal/sim"
)

// Config parameterises the fault processes. The zero value disables
// everything.
type Config struct {
	// Seed derives the injector's RNG streams (independent of the
	// workload and estimate-error streams).
	Seed uint64

	// MTBF is each node's mean time between failures in seconds
	// (exponential). 0 disables crash/recovery cycles.
	MTBF float64
	// MTTR is each node's mean time to repair in seconds (exponential).
	// Must be > 0 when MTBF > 0.
	MTTR float64

	// StragglerMTBF is the mean time between transient slowdown episodes
	// per node (exponential). 0 disables stragglers.
	StragglerMTBF float64
	// StragglerDuration is the mean slowdown episode length in seconds
	// (exponential).
	StragglerDuration float64
	// StragglerFactor is the effective-rate multiplier applied during an
	// episode, in (0, 1]. Default 0.5 when episodes are enabled.
	StragglerFactor float64

	// CorrelatedMTBF is the mean time between correlated outage events
	// (exponential) that take down a random contiguous group of nodes at
	// once — a rack or switch failure. 0 disables correlated outages.
	CorrelatedMTBF float64
	// CorrelatedSize is the number of nodes taken down per correlated
	// outage (clamped to cluster size). Default 2.
	CorrelatedSize int
	// CorrelatedMTTR is the mean outage duration (exponential). Defaults
	// to MTTR, which must then be set.
	CorrelatedMTTR float64

	// Horizon stops the injector from scheduling events past this
	// simulated time. Required when any process is enabled: fault
	// processes are self-perpetuating and would otherwise keep the event
	// calendar non-empty forever.
	Horizon float64
}

// Enabled reports whether any fault process is switched on.
func (c Config) Enabled() bool {
	return c.MTBF > 0 || c.StragglerMTBF > 0 || c.CorrelatedMTBF > 0
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.MTBF > 0 && c.MTTR <= 0 {
		return fmt.Errorf("fault: MTBF %g requires MTTR > 0", c.MTBF)
	}
	if c.StragglerMTBF > 0 {
		if c.StragglerDuration <= 0 {
			return fmt.Errorf("fault: straggler MTBF %g requires duration > 0", c.StragglerMTBF)
		}
		if f := c.StragglerFactor; f != 0 && (f <= 0 || f > 1) {
			return fmt.Errorf("fault: straggler factor %g, want in (0,1]", f)
		}
	}
	if c.CorrelatedMTBF > 0 {
		if c.CorrelatedMTTR <= 0 && c.MTTR <= 0 {
			return fmt.Errorf("fault: correlated MTBF %g requires a repair time (CorrelatedMTTR or MTTR)", c.CorrelatedMTBF)
		}
		if c.CorrelatedSize < 0 {
			return fmt.Errorf("fault: correlated size %d, want >= 0", c.CorrelatedSize)
		}
	}
	if c.Horizon <= 0 || math.IsInf(c.Horizon, 1) || math.IsNaN(c.Horizon) {
		return fmt.Errorf("fault: enabled processes require a finite positive horizon, got %g", c.Horizon)
	}
	return nil
}

// Cluster is the node-state interface the injector drives; both cluster
// engines satisfy it through small adapter funcs supplied at construction.
type Cluster struct {
	// Nodes is the node count.
	Nodes int
	// Down crashes (true) or recovers (false) a node.
	Down func(e *sim.Engine, id int, down bool)
	// Speed sets a node's effective-rate multiplier.
	Speed func(e *sim.Engine, id int, factor float64)
}

// Injector owns the fault processes for one simulation run.
type Injector struct {
	cfg     Config
	cluster Cluster

	// Trace, if set, receives a KindFault event per injected failure
	// (Detail names the process); the node transitions it causes are
	// traced separately by the cluster. Nil costs one comparison.
	Trace obs.Tracer

	// downDepth counts overlapping down-causes per node (its own renewal
	// process plus correlated outages). The cluster transition fires only
	// on 0→1 and 1→0 edges, so overlapping failures compose correctly.
	downDepth []int
	// slowDepth is the analogous counter for straggler episodes.
	slowDepth []int

	// crashes, stragglerEpisodes and correlatedOutages count injected
	// events, for reporting and tests.
	crashes           int
	stragglerEpisodes int
	correlatedOutages int
}

// Stream identifiers: each (process, node) pair gets an independent RNG so
// traces are stable under config changes to unrelated processes.
const (
	streamCrash      = 1 << 32
	streamStraggler  = 2 << 32
	streamCorrelated = 3 << 32
)

// New validates cfg and builds an injector for the given cluster surface.
// Returns (nil, nil) for a disabled config: callers can skip wiring
// entirely.
func New(cfg Config, cluster Cluster) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if cluster.Nodes <= 0 || cluster.Down == nil || cluster.Speed == nil {
		return nil, fmt.Errorf("fault: cluster surface incomplete")
	}
	return &Injector{
		cfg:       cfg,
		cluster:   cluster,
		downDepth: make([]int, cluster.Nodes),
		slowDepth: make([]int, cluster.Nodes),
	}, nil
}

// Crashes returns the number of node-crash events injected so far
// (individual renewal-process crashes plus per-node correlated hits).
func (in *Injector) Crashes() int { return in.crashes }

// StragglerEpisodes returns the number of slowdown episodes begun.
func (in *Injector) StragglerEpisodes() int { return in.stragglerEpisodes }

// CorrelatedOutages returns the number of correlated outage events begun.
func (in *Injector) CorrelatedOutages() int { return in.correlatedOutages }

// Install schedules the first event of every enabled process. Call once,
// before Engine.Run.
func (in *Injector) Install(e *sim.Engine) {
	root := sim.NewRNG(in.cfg.Seed)
	if in.cfg.MTBF > 0 {
		for id := 0; id < in.cluster.Nodes; id++ {
			rng := root.Stream(streamCrash | uint64(id))
			in.scheduleCrash(e, id, rng)
		}
	}
	if in.cfg.StragglerMTBF > 0 {
		for id := 0; id < in.cluster.Nodes; id++ {
			rng := root.Stream(streamStraggler | uint64(id))
			in.scheduleStraggler(e, id, rng)
		}
	}
	if in.cfg.CorrelatedMTBF > 0 {
		rng := root.Stream(streamCorrelated)
		in.scheduleCorrelated(e, rng)
	}
}

// at schedules fn at now+d with fault priority unless that would pass the
// horizon.
func (in *Injector) at(e *sim.Engine, d float64, fn sim.Handler) bool {
	t := e.Now() + d
	if t > in.cfg.Horizon {
		return false
	}
	e.At(t, sim.PriorityFault, fn)
	return true
}

// scheduleCrash arms node id's next failure. Each node alternates
// up Exp(MTBF) → down Exp(MTTR) as an alternating renewal process.
func (in *Injector) scheduleCrash(e *sim.Engine, id int, rng *sim.RNG) {
	up := rng.Exp(in.cfg.MTBF)
	in.at(e, up, func(e *sim.Engine) {
		in.crashes++
		if in.Trace != nil {
			in.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindFault, Job: -1, Node: id, Detail: "crash"})
		}
		in.nodeDown(e, id)
		// Repairs are capped at the horizon rather than dropped: a node
		// left permanently dead past the horizon would starve the drain
		// of queued work.
		d := rng.Exp(in.cfg.MTTR)
		if e.Now()+d > in.cfg.Horizon {
			d = math.Max(0, in.cfg.Horizon-e.Now())
		}
		e.At(e.Now()+d, sim.PriorityFault, func(e *sim.Engine) {
			in.nodeUp(e, id)
			in.scheduleCrash(e, id, rng)
		})
	})
}

// scheduleStraggler arms node id's next slowdown episode.
func (in *Injector) scheduleStraggler(e *sim.Engine, id int, rng *sim.RNG) {
	gap := rng.Exp(in.cfg.StragglerMTBF)
	in.at(e, gap, func(e *sim.Engine) {
		in.stragglerEpisodes++
		if in.Trace != nil {
			factor := in.cfg.StragglerFactor
			if factor == 0 {
				factor = 0.5
			}
			in.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindFault, Job: -1, Node: id, Value: factor, Detail: "straggler"})
		}
		in.nodeSlow(e, id, true)
		dur := rng.Exp(in.cfg.StragglerDuration)
		d := dur
		if e.Now()+d > in.cfg.Horizon {
			d = math.Max(0, in.cfg.Horizon-e.Now())
		}
		e.At(e.Now()+d, sim.PriorityFault, func(e *sim.Engine) {
			in.nodeSlow(e, id, false)
			in.scheduleStraggler(e, id, rng)
		})
	})
}

// scheduleCorrelated arms the next correlated outage: a contiguous block
// of nodes starting at a random offset goes down together.
func (in *Injector) scheduleCorrelated(e *sim.Engine, rng *sim.RNG) {
	gap := rng.Exp(in.cfg.CorrelatedMTBF)
	in.at(e, gap, func(e *sim.Engine) {
		in.correlatedOutages++
		size := in.cfg.CorrelatedSize
		if size <= 0 {
			size = 2
		}
		if size > in.cluster.Nodes {
			size = in.cluster.Nodes
		}
		start := rng.Intn(in.cluster.Nodes)
		if in.Trace != nil {
			in.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindFault, Job: -1, Node: start, Value: float64(size), Detail: "correlated-outage"})
		}
		ids := make([]int, size)
		for i := range ids {
			ids[i] = (start + i) % in.cluster.Nodes
		}
		for _, id := range ids {
			in.crashes++
			in.nodeDown(e, id)
		}
		mttr := in.cfg.CorrelatedMTTR
		if mttr <= 0 {
			mttr = in.cfg.MTTR
		}
		d := rng.Exp(mttr)
		if e.Now()+d > in.cfg.Horizon {
			d = math.Max(0, in.cfg.Horizon-e.Now())
		}
		e.At(e.Now()+d, sim.PriorityFault, func(e *sim.Engine) {
			for _, id := range ids {
				in.nodeUp(e, id)
			}
			in.scheduleCorrelated(e, rng)
		})
	})
}

// nodeDown registers one more down-cause for a node; the cluster sees the
// crash only on the first.
func (in *Injector) nodeDown(e *sim.Engine, id int) {
	in.downDepth[id]++
	if in.downDepth[id] == 1 {
		in.cluster.Down(e, id, true)
	}
}

// nodeUp releases one down-cause; the cluster sees the recovery only when
// the last cause clears.
func (in *Injector) nodeUp(e *sim.Engine, id int) {
	if in.downDepth[id] == 0 {
		return
	}
	in.downDepth[id]--
	if in.downDepth[id] == 0 {
		in.cluster.Down(e, id, false)
	}
}

// nodeSlow begins or ends a straggler episode; overlapping episodes
// compose by depth, not by compounding the factor.
func (in *Injector) nodeSlow(e *sim.Engine, id int, slow bool) {
	factor := in.cfg.StragglerFactor
	if factor == 0 {
		factor = 0.5
	}
	if slow {
		in.slowDepth[id]++
		if in.slowDepth[id] == 1 {
			in.cluster.Speed(e, id, factor)
		}
		return
	}
	if in.slowDepth[id] == 0 {
		return
	}
	in.slowDepth[id]--
	if in.slowDepth[id] == 0 {
		in.cluster.Speed(e, id, 1)
	}
}
