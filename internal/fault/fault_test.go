package fault

import (
	"fmt"
	"reflect"
	"testing"

	"clustersched/internal/sim"
)

// traceCluster records every transition the injector drives, as a
// printable trace for determinism comparisons.
type traceCluster struct {
	nodes int
	trace []string
	down  map[int]bool
	slow  map[int]bool
}

func newTraceCluster(n int) *traceCluster {
	return &traceCluster{nodes: n, down: map[int]bool{}, slow: map[int]bool{}}
}

func (tc *traceCluster) surface() Cluster {
	return Cluster{
		Nodes: tc.nodes,
		Down: func(e *sim.Engine, id int, down bool) {
			tc.trace = append(tc.trace, fmt.Sprintf("t=%.6f node=%d down=%v", e.Now(), id, down))
			tc.down[id] = down
		},
		Speed: func(e *sim.Engine, id int, factor float64) {
			tc.trace = append(tc.trace, fmt.Sprintf("t=%.6f node=%d speed=%g", e.Now(), id, factor))
			tc.slow[id] = factor != 1
		},
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"crashes ok", Config{MTBF: 100, MTTR: 10, Horizon: 1000}, true},
		{"crashes without MTTR", Config{MTBF: 100, Horizon: 1000}, false},
		{"crashes without horizon", Config{MTBF: 100, MTTR: 10}, false},
		{"straggler ok", Config{StragglerMTBF: 100, StragglerDuration: 10, Horizon: 1000}, true},
		{"straggler without duration", Config{StragglerMTBF: 100, Horizon: 1000}, false},
		{"straggler factor out of range", Config{StragglerMTBF: 100, StragglerDuration: 10, StragglerFactor: 1.5, Horizon: 1000}, false},
		{"correlated ok", Config{CorrelatedMTBF: 100, CorrelatedMTTR: 10, Horizon: 1000}, true},
		{"correlated falls back to MTTR", Config{CorrelatedMTBF: 100, MTTR: 10, Horizon: 1000}, true},
		{"correlated without repair", Config{CorrelatedMTBF: 100, Horizon: 1000}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestDisabledConfigMakesNoInjector(t *testing.T) {
	inj, err := New(Config{}, newTraceCluster(4).surface())
	if err != nil {
		t.Fatal(err)
	}
	if inj != nil {
		t.Fatal("disabled config produced an injector")
	}
}

func runTrace(t *testing.T, cfg Config, nodes int) (*traceCluster, *Injector) {
	t.Helper()
	tc := newTraceCluster(nodes)
	inj, err := New(cfg, tc.surface())
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.Install(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return tc, inj
}

func TestDeterministicTraces(t *testing.T) {
	cfg := Config{
		Seed: 42, MTBF: 500, MTTR: 50,
		StragglerMTBF: 700, StragglerDuration: 100, StragglerFactor: 0.5,
		CorrelatedMTBF: 2000, CorrelatedSize: 2, CorrelatedMTTR: 80,
		Horizon: 10_000,
	}
	a, injA := runTrace(t, cfg, 8)
	b, _ := runTrace(t, cfg, 8)
	if len(a.trace) == 0 {
		t.Fatal("no fault events fired over 20 MTBFs")
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("same seed, different traces:\n%v\nvs\n%v", a.trace, b.trace)
	}
	if injA.Crashes() == 0 || injA.StragglerEpisodes() == 0 || injA.CorrelatedOutages() == 0 {
		t.Fatalf("expected all processes to fire: crashes=%d stragglers=%d outages=%d",
			injA.Crashes(), injA.StragglerEpisodes(), injA.CorrelatedOutages())
	}

	cfg.Seed = 43
	c, _ := runTrace(t, cfg, 8)
	if reflect.DeepEqual(a.trace, c.trace) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestEveryNodeRecoversAndCalendarDrains(t *testing.T) {
	cfg := Config{Seed: 7, MTBF: 300, MTTR: 100, Horizon: 5000}
	tc, _ := runTrace(t, cfg, 6)
	for id, down := range tc.down {
		if down {
			t.Errorf("node %d still down after the calendar drained", id)
		}
	}
	for id, slow := range tc.slow {
		if slow {
			t.Errorf("node %d still degraded after the calendar drained", id)
		}
	}
}

func TestOverlappingDownCausesCompose(t *testing.T) {
	// Drive nodeDown/nodeUp directly: a node crashed by both its own
	// renewal process and a correlated outage must see exactly one
	// down=true and one down=false transition.
	tc := newTraceCluster(2)
	inj, err := New(Config{MTBF: 1, MTTR: 1, Horizon: 1}, tc.surface())
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	inj.nodeDown(e, 0)
	inj.nodeDown(e, 0) // second cause: no new transition
	inj.nodeUp(e, 0)   // one cause clears: still down
	inj.nodeUp(e, 0)   // last cause clears: up
	inj.nodeUp(e, 0)   // spurious: ignored
	want := []string{
		"t=0.000000 node=0 down=true",
		"t=0.000000 node=0 down=false",
	}
	if !reflect.DeepEqual(tc.trace, want) {
		t.Fatalf("transition trace = %v, want %v", tc.trace, want)
	}
}

func TestHorizonBoundsInjection(t *testing.T) {
	cfg := Config{Seed: 3, MTBF: 100, MTTR: 100_000, Horizon: 1000}
	tc, _ := runTrace(t, cfg, 4)
	// With MTTR far beyond the horizon every repair is capped at the
	// horizon, so the calendar drains (runTrace would hang otherwise) and
	// all nodes end up.
	for id, down := range tc.down {
		if down {
			t.Errorf("node %d left down past the horizon", id)
		}
	}
}
