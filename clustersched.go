// Package clustersched is a cluster scheduling laboratory reproducing
// "Managing Risk of Inaccurate Runtime Estimates for Deadline Constrained
// Job Admission Control in Clusters" (Yeo & Buyya, ICPP 2006).
//
// It provides three deadline-constrained admission-control policies — EDF,
// Libra, and the paper's contribution LibraRisk — on top of a from-scratch
// discrete-event cluster simulator, a Standard Workload Format trace
// substrate, a calibrated synthetic SDSC SP2 workload generator, and an
// experiment harness that regenerates every figure of the paper's
// evaluation.
//
// The quickest start:
//
//	res, err := clustersched.Simulate(clustersched.DefaultOptions())
//	fmt.Println(res.Summary.PctFulfilled)
//
// See examples/ for runnable scenarios and cmd/experiments for the full
// figure regeneration.
package clustersched

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"clustersched/internal/analysis"
	"clustersched/internal/checkpoint"
	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/experiment"
	"clustersched/internal/fault"
	"clustersched/internal/metrics"
	"clustersched/internal/obs"
	"clustersched/internal/predict"
	"clustersched/internal/sched"
	"clustersched/internal/sim"
	"clustersched/internal/swf"
	"clustersched/internal/workload"
)

// Policy names an admission-control strategy.
type Policy string

// The built-in policies. EDF and Libra are the paper's baselines;
// LibraRisk is its contribution. The remaining four are related-work
// comparators from the paper's §2 (classic FCFS, EASY and conservative
// backfilling, and a QoPS-style slack admission control) provided as
// extensions.
const (
	PolicyEDF                  Policy = "edf"
	PolicyLibra                Policy = "libra"
	PolicyLibraRisk            Policy = "librarisk"
	PolicyFCFS                 Policy = "fcfs"
	PolicyBackfillEASY         Policy = "backfill-easy"
	PolicyBackfillConservative Policy = "backfill-conservative"
	PolicyBackfillEDF          Policy = "backfill-edf"
	PolicyQoPS                 Policy = "qops"
)

// AllPolicies lists every built-in policy, paper policies first.
func AllPolicies() []Policy {
	return []Policy{
		PolicyEDF, PolicyLibra, PolicyLibraRisk,
		PolicyFCFS, PolicyBackfillEASY, PolicyBackfillConservative,
		PolicyBackfillEDF, PolicyQoPS,
	}
}

// NodeSelection names how Libra-family policies order suitable nodes.
type NodeSelection string

// Node selection strategies: best-fit saturates nodes (Libra's default),
// first-fit walks them in index order (LibraRisk's Algorithm 1), worst-fit
// levels load.
const (
	SelectBestFit  NodeSelection = "best-fit"
	SelectFirstFit NodeSelection = "first-fit"
	SelectWorstFit NodeSelection = "worst-fit"
)

// Options configures a simulation end to end. Zero values select the
// paper's defaults via DefaultOptions; construct Options from
// DefaultOptions and override fields.
type Options struct {
	// Cluster geometry.
	Nodes  int     // computation nodes (default 128, the SDSC SP2)
	Rating float64 // SPEC rating per node (default 168)
	// NodeRatings, when non-empty, builds a heterogeneous cluster with
	// one node per entry (overriding Nodes); Rating stays the reference
	// rating in which runtimes and estimates are expressed.
	NodeRatings []float64

	// Policy under test and its knobs.
	Policy        Policy
	NodeSelection NodeSelection // empty selects the policy's own default
	// RiskSigmaThreshold relaxes LibraRisk's zero-risk rule to σ ≤ t.
	RiskSigmaThreshold float64
	// QoPSSlackFactor is how many estimated runtimes a QoPS-admitted
	// job's deadline may slip to accommodate later urgent jobs.
	QoPSSlackFactor float64
	// Estimator selects the runtime-estimate source the scheduler sees:
	// "" or "user-estimate" uses the (inaccuracy-blended) user estimates;
	// "recent-average" and "scaling" apply history-based online
	// prediction (enable UserModel for these to have per-user history).
	Estimator string
	// UserModel, when true, generates the workload with a persistent-user
	// population (skewed activity, per-user estimation styles and runtime
	// locality) instead of the job-level estimate mixture.
	UserModel bool
	// MonitorInterval, when positive, samples cluster utilization and
	// live deadline-delay risk at this period (seconds of simulated
	// time); samples appear in Result.Monitor. Time-shared policies only
	// (libra, librarisk).
	MonitorInterval float64
	// WorkConserving selects whether nodes redistribute unused share
	// (default true; false is the strict eq.-1 reading).
	WorkConserving bool

	// Workload synthesis.
	Jobs               int
	Seed               uint64
	ArrivalDelayFactor float64 // < 1 compresses arrivals (heavier load)

	// Deadline model (§4).
	HighUrgencyFraction float64 // 0..1
	DeadlineRatio       float64 // deadline high:low ratio
	// InaccuracyPct: 0 = accurate estimates, 100 = trace estimates.
	InaccuracyPct float64

	// Fault injection (internal/fault): deterministic seeded failure
	// processes. FaultMTBF > 0 enables per-node crash/recovery cycles
	// (exponential MTBF/MTTR); FaultStragglerMTBF > 0 enables transient
	// slowdown episodes; FaultCorrelatedMTBF > 0 enables correlated
	// multi-node outages. Only the edf, libra and librarisk policies have
	// failure-recovery semantics. All durations are seconds of simulated
	// time; zero values disable each process and, when all are disabled,
	// the run is bit-identical to one without the fault layer.
	FaultSeed              uint64
	FaultMTBF              float64
	FaultMTTR              float64
	FaultStragglerMTBF     float64
	FaultStragglerDuration float64
	FaultStragglerFactor   float64
	FaultCorrelatedMTBF    float64
	FaultCorrelatedSize    int
	FaultCorrelatedMTTR    float64
	// FaultHorizon bounds fault activity; 0 defaults to the last job
	// arrival of the (scaled) workload.
	FaultHorizon float64

	// CheckInvariants re-validates model invariants (clock monotonicity,
	// job conservation, cluster structural state) after every simulation
	// event and fails the run on the first violation. Costs roughly one
	// cluster scan per event; meant for tests and debugging.
	CheckInvariants bool
	// MaxEvents overrides the engine's runaway-loop event budget
	// (default 50M).
	MaxEvents uint64
	// Shards > 1 runs time-shared policies (libra, librarisk) on the
	// sharded parallel engine: nodes are partitioned into Shards
	// contiguous groups whose completion events advance concurrently
	// between admission barriers. Results are byte-identical to the
	// sequential engine at any shard count. Values ≤ 1 (and all
	// space-shared policies) use the sequential engine; counts above the
	// node count are clamped.
	Shards int
}

// faultConfig assembles the internal fault configuration, defaulting the
// horizon to the given last-arrival time.
func (o Options) faultConfig(defaultHorizon float64) fault.Config {
	cfg := fault.Config{
		Seed:              o.FaultSeed,
		MTBF:              o.FaultMTBF,
		MTTR:              o.FaultMTTR,
		StragglerMTBF:     o.FaultStragglerMTBF,
		StragglerDuration: o.FaultStragglerDuration,
		StragglerFactor:   o.FaultStragglerFactor,
		CorrelatedMTBF:    o.FaultCorrelatedMTBF,
		CorrelatedSize:    o.FaultCorrelatedSize,
		CorrelatedMTTR:    o.FaultCorrelatedMTTR,
		Horizon:           o.FaultHorizon,
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = defaultHorizon
	}
	return cfg
}

// DefaultOptions returns the paper's experimental defaults with the
// LibraRisk policy selected.
func DefaultOptions() Options {
	return Options{
		Nodes:               workload.SDSCSP2Nodes,
		Rating:              workload.SDSCSP2Rating,
		Policy:              PolicyLibraRisk,
		WorkConserving:      true,
		Jobs:                workload.TraceJobs,
		Seed:                1,
		ArrivalDelayFactor:  workload.DefaultArrivalDelayFactor,
		HighUrgencyFraction: workload.DefaultHighUrgencyFraction,
		DeadlineRatio:       workload.DefaultDeadlineRatio,
		InaccuracyPct:       100,
	}
}

// Job is one unit of work: real runtime and user estimate in seconds of
// dedicated execution on a reference-rating node, a processor requirement,
// and a hard deadline relative to submission.
type Job struct {
	ID            int
	Submit        float64
	Runtime       float64
	TraceEstimate float64
	NumProc       int
	Deadline      float64
	HighUrgency   bool
}

// Outcome classifies a submitted job's fate.
type Outcome string

// Job outcomes.
const (
	OutcomeRejected   Outcome = "rejected"
	OutcomeMet        Outcome = "met"
	OutcomeMissed     Outcome = "missed"
	OutcomeUnfinished Outcome = "unfinished"
)

// JobOutcome is the per-job record of one simulation.
type JobOutcome struct {
	JobID    int
	Outcome  Outcome
	Finish   float64
	Response float64
	Delay    float64
	Slowdown float64
	Reason   string
}

// Summary aggregates one simulation run; PctFulfilled and AvgSlowdownMet
// are the paper's two evaluation metrics.
type Summary struct {
	Submitted      int
	Rejected       int
	Completed      int
	Met            int
	Missed         int
	Unfinished     int
	MetHighUrgency int
	MetLowUrgency  int
	// Killed counts node-crash teardowns of running jobs (fault injection
	// only); killed jobs are resubmitted, so this is not part of the
	// Submitted decomposition.
	Killed         int
	PctFulfilled   float64
	AvgSlowdownMet float64
	AcceptanceRate float64
}

// MonitorSample is one periodic observation of the cluster (see
// Options.MonitorInterval).
type MonitorSample struct {
	Time          float64
	Utilization   float64
	RunningJobs   int
	BusyNodes     int
	MeanSigma     float64
	MeanMu        float64
	DelayedJobs   int
	ZeroRiskNodes int
	// DownNodes counts crashed nodes at the sample instant (fault
	// injection only); down nodes are excluded from the other aggregates.
	DownNodes int
}

// Result is a completed simulation.
type Result struct {
	Policy  Policy
	Summary Summary
	Jobs    []JobOutcome
	// Monitor holds the time series when Options.MonitorInterval was set
	// and the policy runs on a time-shared cluster.
	Monitor []MonitorSample
}

// NodeCount returns the effective cluster size: len(NodeRatings) when a
// heterogeneous cluster is configured, Nodes otherwise.
func (o Options) NodeCount() int {
	if len(o.NodeRatings) > 0 {
		return len(o.NodeRatings)
	}
	return o.Nodes
}

// Validate reports the first error in the options.
func (o Options) Validate() error {
	for i, r := range o.NodeRatings {
		if r <= 0 || math.IsNaN(r) {
			return fmt.Errorf("clustersched: NodeRatings[%d] = %g, want > 0", i, r)
		}
	}
	if o.MonitorInterval < 0 || math.IsNaN(o.MonitorInterval) {
		return fmt.Errorf("clustersched: MonitorInterval = %g, want >= 0", o.MonitorInterval)
	}
	switch {
	case o.NodeCount() <= 0:
		return fmt.Errorf("clustersched: Nodes = %d, want > 0", o.Nodes)
	case o.Rating <= 0:
		return fmt.Errorf("clustersched: Rating = %g, want > 0", o.Rating)
	case o.Jobs <= 0:
		return fmt.Errorf("clustersched: Jobs = %d, want > 0", o.Jobs)
	case o.ArrivalDelayFactor < 0:
		return fmt.Errorf("clustersched: ArrivalDelayFactor = %g, want >= 0", o.ArrivalDelayFactor)
	case o.HighUrgencyFraction < 0 || o.HighUrgencyFraction > 1:
		return fmt.Errorf("clustersched: HighUrgencyFraction = %g, want in [0,1]", o.HighUrgencyFraction)
	case o.DeadlineRatio < 1:
		return fmt.Errorf("clustersched: DeadlineRatio = %g, want >= 1", o.DeadlineRatio)
	case o.InaccuracyPct < 0 || o.InaccuracyPct > 100:
		return fmt.Errorf("clustersched: InaccuracyPct = %g, want in [0,100]", o.InaccuracyPct)
	case o.RiskSigmaThreshold < 0 || math.IsNaN(o.RiskSigmaThreshold):
		return fmt.Errorf("clustersched: RiskSigmaThreshold = %g, want >= 0", o.RiskSigmaThreshold)
	case o.QoPSSlackFactor < 0 || math.IsNaN(o.QoPSSlackFactor):
		return fmt.Errorf("clustersched: QoPSSlackFactor = %g, want >= 0", o.QoPSSlackFactor)
	case o.Shards < 0:
		return fmt.Errorf("clustersched: Shards = %d, want >= 0", o.Shards)
	}
	switch o.Policy {
	case PolicyEDF, PolicyLibra, PolicyLibraRisk,
		PolicyFCFS, PolicyBackfillEASY, PolicyBackfillConservative,
		PolicyBackfillEDF, PolicyQoPS:
	default:
		return fmt.Errorf("clustersched: unknown policy %q", o.Policy)
	}
	switch o.NodeSelection {
	case "", SelectBestFit, SelectFirstFit, SelectWorstFit:
	default:
		return fmt.Errorf("clustersched: unknown node selection %q", o.NodeSelection)
	}
	if o.faultConfig(1).Enabled() {
		switch o.Policy {
		case PolicyEDF, PolicyLibra, PolicyLibraRisk:
		default:
			return fmt.Errorf("clustersched: policy %q has no failure-recovery semantics; faults require edf, libra or librarisk", o.Policy)
		}
		// Validate with a placeholder horizon: the real default (last job
		// arrival) is only known at run time, but every other
		// consistency error should surface here.
		if err := o.faultConfig(1).Validate(); err != nil {
			return fmt.Errorf("clustersched: %w", err)
		}
	}
	switch o.Estimator {
	case "", "user-estimate", "recent-average", "scaling":
	default:
		return fmt.Errorf("clustersched: unknown estimator %q", o.Estimator)
	}
	return nil
}

// GenerateWorkload synthesizes the SDSC-SP2-like job stream (with
// deadlines assigned) the options describe, before arrival scaling.
func GenerateWorkload(o Options) ([]Job, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	jobs, err := internalWorkload(o)
	if err != nil {
		return nil, err
	}
	return fromInternalJobs(jobs), nil
}

func internalWorkload(o Options) ([]workload.Job, error) {
	gen := workload.DefaultGeneratorConfig()
	gen.Jobs = o.Jobs
	gen.Seed = o.Seed
	gen.MaxProcs = o.NodeCount()
	if o.UserModel {
		gen.Users = workload.DefaultUserModelConfig()
	}
	base, err := workload.Generate(gen)
	if err != nil {
		return nil, err
	}
	dcfg := workload.DefaultDeadlineConfig()
	dcfg.HighUrgencyFraction = o.HighUrgencyFraction
	dcfg.Ratio = o.DeadlineRatio
	return workload.AssignDeadlines(base, dcfg)
}

// SimulateMany runs several independent simulations concurrently (one
// worker per CPU) and returns their results in input order. Each Options
// value is validated; the first failure aborts the batch.
func SimulateMany(opts []Options) ([]Result, error) {
	return SimulateManyContext(context.Background(), opts)
}

// SimulateManyContext is SimulateMany under a cancellable context:
// cancellation stops admitting new simulations, aborts the in-flight ones
// at event-loop granularity, and returns the cancellation cause.
func SimulateManyContext(ctx context.Context, opts []Options) ([]Result, error) {
	for i := range opts {
		if err := opts[i].Validate(); err != nil {
			return nil, fmt.Errorf("options[%d]: %w", i, err)
		}
	}
	results := make([]Result, len(opts))
	errs := make([]error, len(opts))
	started := make([]bool, len(opts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(opts) {
		workers = len(opts)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				started[i] = true
				results[i], errs[i] = SimulateContext(ctx, opts[i])
			}
		}()
	}
admit:
	for i := range opts {
		select {
		case <-ctx.Done():
			break admit
		case work <- i:
		}
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("options[%d]: %w", i, err)
		}
	}
	// Simulations never admitted (cancellation stopped the pool) must not
	// pass as successful zero-value results.
	if err := ctx.Err(); err != nil {
		for i := range started {
			if !started[i] {
				return nil, fmt.Errorf("options[%d]: %w", i, err)
			}
		}
	}
	return results, nil
}

// Simulate generates the workload and runs the selected policy over it.
func Simulate(o Options) (Result, error) {
	return SimulateContext(context.Background(), o)
}

// SimulateContext is Simulate under a cancellable context: the event loop
// polls ctx and aborts the run with the cancellation cause.
func SimulateContext(ctx context.Context, o Options) (Result, error) {
	if err := o.Validate(); err != nil {
		return Result{}, err
	}
	jobs, err := internalWorkload(o)
	if err != nil {
		return Result{}, err
	}
	return simulateInternal(ctx, o, jobs)
}

// SimulateJobs runs the selected policy over a caller-provided workload
// (for example one loaded from an SWF trace via LoadSWF). Jobs must be in
// nondecreasing submit order.
func SimulateJobs(o Options, jobs []Job) (Result, error) {
	return SimulateJobsContext(context.Background(), o, jobs)
}

// SimulateJobsContext is SimulateJobs under a cancellable context.
func SimulateJobsContext(ctx context.Context, o Options, jobs []Job) (Result, error) {
	if err := o.Validate(); err != nil {
		return Result{}, err
	}
	return simulateInternal(ctx, o, toInternalJobs(jobs))
}

// ratings returns the per-node rating list the options describe.
func (o Options) ratings() []float64 {
	if len(o.NodeRatings) > 0 {
		return o.NodeRatings
	}
	out := make([]float64, o.Nodes)
	for i := range out {
		out[i] = o.Rating
	}
	return out
}

// Economy is the provider-side ledger of one simulation under the default
// SLA pricing: urgency-premium revenue for fulfilled jobs, delay penalties
// for missed ones, forgone revenue for rejections.
type Economy struct {
	Revenue          float64
	Penalties        float64
	Profit           float64
	ForgoneRevenue   float64
	FulfilledProcHrs float64
}

// ProviderEconomics runs the configured simulation and prices its
// outcomes, translating the paper's deadline metrics into provider money.
func ProviderEconomics(o Options) (Economy, error) {
	if err := o.Validate(); err != nil {
		return Economy{}, err
	}
	jobs, err := internalWorkload(o)
	if err != nil {
		return Economy{}, err
	}
	jobs = workload.ScaleArrivals(jobs, o.ArrivalDelayFactor)
	rec, err := runForRecorder(o, jobs)
	if err != nil {
		return Economy{}, err
	}
	eco, err := analysis.Economics(rec, jobs, analysis.DefaultPricing())
	if err != nil {
		return Economy{}, err
	}
	return Economy{
		Revenue: eco.Revenue, Penalties: eco.Penalties, Profit: eco.Profit,
		ForgoneRevenue: eco.ForgoneRevenue, FulfilledProcHrs: eco.FulfilledProcHrs,
	}, nil
}

// Report runs the configured simulation and returns a rendered analysis
// report: class breakdowns, slowdown/response distributions, bounded
// slowdown, rejection-reason tallies, and (with UserModel) Jain's
// per-user fairness index.
func Report(o Options) (string, error) {
	if err := o.Validate(); err != nil {
		return "", err
	}
	jobs, err := internalWorkload(o)
	if err != nil {
		return "", err
	}
	jobs = workload.ScaleArrivals(jobs, o.ArrivalDelayFactor)
	rec, err := runForRecorder(o, jobs)
	if err != nil {
		return "", err
	}
	rep := analysis.Build(rec, jobs)
	var sb strings.Builder
	if err := analysis.WriteReport(&sb, rep); err != nil {
		return "", err
	}
	if o.UserModel {
		fmt.Fprintf(&sb, "user fairness Jain index %.3f\n", analysis.JainFairness(rec, jobs))
	}
	eco, err := analysis.Economics(rec, jobs, analysis.DefaultPricing())
	if err != nil {
		return "", err
	}
	sb.WriteString("\nprovider economics (default SLA pricing):\n")
	if err := analysis.WriteEconomy(&sb, eco); err != nil {
		return "", err
	}
	if tl := analysis.Timeline(rec.Results(), 16); tl != nil {
		sb.WriteString("\n")
		if err := analysis.WriteTimeline(&sb, tl, o.NodeCount()); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

func simulateInternal(ctx context.Context, o Options, jobs []workload.Job) (Result, error) {
	jobs = workload.ScaleArrivals(jobs, o.ArrivalDelayFactor)
	rec, mon, err := runSimulation(ctx, o, jobs)
	if err != nil {
		return Result{}, err
	}
	res := Result{Policy: o.Policy, Summary: toSummary(rec.Summarize()), Jobs: toOutcomes(rec.Results())}
	if mon != nil {
		for _, s := range mon.Samples() {
			res.Monitor = append(res.Monitor, MonitorSample{
				Time: s.Time, Utilization: s.Utilization, RunningJobs: s.RunningJobs,
				BusyNodes: s.BusyNodes, MeanSigma: s.MeanSigma, MeanMu: s.MeanMu,
				DelayedJobs: s.DelayedJobs, ZeroRiskNodes: s.ZeroRiskNodes,
				DownNodes: s.DownNodes,
			})
		}
	}
	return res, nil
}

// runForRecorder executes the simulation and hands back the raw recorder
// for post-processing (the jobs must already be arrival-scaled).
func runForRecorder(o Options, jobs []workload.Job) (*metrics.Recorder, error) {
	rec, _, err := runSimulation(context.Background(), o, jobs)
	return rec, err
}

func runSimulation(ctx context.Context, o Options, jobs []workload.Job) (*metrics.Recorder, *core.Monitor, error) {
	ccfg := cluster.DefaultConfig()
	ccfg.RefRating = o.Rating
	ccfg.WorkConserving = o.WorkConserving

	e := sim.NewEngine()
	rec := metrics.NewRecorder()
	var ts *cluster.TimeShared
	var ss *cluster.SpaceShared
	newTS := func() (*cluster.TimeShared, error) {
		c, err := cluster.NewTimeSharedHetero(o.ratings(), ccfg)
		ts = c
		return c, err
	}
	newSS := func() (*cluster.SpaceShared, error) {
		c, err := cluster.NewSpaceSharedHetero(o.ratings(), ccfg)
		ss = c
		return c, err
	}
	var pol core.Policy
	var mon *core.Monitor
	switch o.Policy {
	case PolicyEDF:
		c, err := newSS()
		if err != nil {
			return nil, nil, err
		}
		pol = core.NewEDF(c, rec)
	case PolicyLibra, PolicyLibraRisk:
		c, err := newTS()
		if err != nil {
			return nil, nil, err
		}
		if o.Policy == PolicyLibra {
			p := core.NewLibra(c, rec)
			if sel, ok := toSelection(o.NodeSelection); ok {
				p.Selection = sel
			}
			pol = p
		} else {
			p := core.NewLibraRisk(c, rec)
			p.SigmaThreshold = o.RiskSigmaThreshold
			if sel, ok := toSelection(o.NodeSelection); ok {
				p.Selection = sel
			}
			pol = p
		}
		if o.MonitorInterval > 0 {
			m, err := core.NewMonitor(c, o.MonitorInterval)
			if err != nil {
				return nil, nil, err
			}
			mon = m
			mon.Start(e)
		}
	case PolicyFCFS:
		c, err := newSS()
		if err != nil {
			return nil, nil, err
		}
		pol = sched.NewFCFS(c, rec)
	case PolicyBackfillEASY:
		c, err := newSS()
		if err != nil {
			return nil, nil, err
		}
		pol = sched.NewBackfill(c, rec, sched.EASYBackfill)
	case PolicyBackfillConservative:
		c, err := newSS()
		if err != nil {
			return nil, nil, err
		}
		pol = sched.NewBackfill(c, rec, sched.ConservativeBackfill)
	case PolicyBackfillEDF:
		c, err := newSS()
		if err != nil {
			return nil, nil, err
		}
		p := sched.NewBackfill(c, rec, sched.EASYBackfill)
		p.DeadlineOrdered = true
		pol = p
	case PolicyQoPS:
		c, err := newSS()
		if err != nil {
			return nil, nil, err
		}
		pol = sched.NewQoPS(c, rec, o.QoPSSlackFactor)
	}
	if o.Estimator != "" && o.Estimator != "user-estimate" {
		pred, err := predict.New(o.Estimator)
		if err != nil {
			return nil, nil, err
		}
		pol = predict.Wrap(pol, rec, pred)
	}
	var chk *sim.InvariantChecker
	if o.CheckInvariants {
		chk = core.InstallInvariantChecker(e, rec, ts, ss)
	}
	var lastArrival float64
	for _, j := range jobs {
		if j.Submit > lastArrival {
			lastArrival = j.Submit
		}
	}
	if fc := o.faultConfig(lastArrival); fc.Enabled() {
		var surface fault.Cluster
		if ts != nil {
			tc := ts
			surface = fault.Cluster{
				Nodes: tc.Len(),
				Down:  func(e *sim.Engine, id int, down bool) { tc.SetNodeDown(e, id, down) },
				Speed: tc.SetNodeSpeed,
			}
		} else {
			sc := ss
			surface = fault.Cluster{
				Nodes: sc.Len(),
				Down:  func(e *sim.Engine, id int, down bool) { sc.SetNodeDown(e, id, down) },
				Speed: sc.SetNodeSpeed,
			}
		}
		inj, err := fault.New(fc, surface)
		if err != nil {
			return nil, nil, err
		}
		if inj != nil {
			inj.Install(e)
		}
	}
	if o.MaxEvents > 0 {
		e.MaxEvents = o.MaxEvents
	}
	// Sharded execution for time-shared policies; space-shared policies
	// stay sequential (every completion there is a dispatch decision).
	shardCount := 0
	if o.Shards > 1 && ts != nil {
		shardCount = o.Shards
		if shardCount > ts.Len() {
			shardCount = ts.Len()
		}
	}
	if shardCount > 1 {
		engines := make([]*sim.Engine, shardCount)
		for i := range engines {
			engines[i] = sim.NewEngine()
		}
		if err := ts.AttachShards(engines); err != nil {
			return nil, mon, err
		}
		pool := sim.NewShardPool(shardCount)
		defer pool.Close()
		if ap, ok := pol.(core.AdmitParallel); ok {
			ap.SetAdmitPool(pool)
		}
		if mon != nil {
			mon.PendingExtra = ts.ShardsPending
		}
		var drv core.ArrivalDriver
		if err := core.RunSimulationSharded(ctx, e, ts, pool, pol, rec, jobs, o.InaccuracyPct, &drv); err != nil {
			return nil, mon, err
		}
	} else if err := core.RunSimulationContext(ctx, e, pol, rec, jobs, o.InaccuracyPct); err != nil {
		return nil, mon, err
	}
	if chk != nil {
		if err := chk.Err(); err != nil {
			return nil, mon, err
		}
	}
	return rec, mon, nil
}

func toSelection(s NodeSelection) (core.NodeSelection, bool) {
	switch s {
	case SelectBestFit:
		return core.BestFit, true
	case SelectFirstFit:
		return core.FirstFit, true
	case SelectWorstFit:
		return core.WorstFit, true
	default:
		return 0, false
	}
}

func toSummary(s metrics.Summary) Summary {
	return Summary{
		Submitted: s.Submitted, Rejected: s.Rejected, Completed: s.Completed,
		Met: s.Met, Missed: s.Missed, Unfinished: s.Unfinished,
		MetHighUrgency: s.MetHigh, MetLowUrgency: s.MetLow, Killed: s.Killed,
		PctFulfilled: s.PctFulfilled, AvgSlowdownMet: s.AvgSlowdownMet,
		AcceptanceRate: s.AcceptanceRate,
	}
}

func toOutcomes(rs []metrics.JobResult) []JobOutcome {
	out := make([]JobOutcome, len(rs))
	for i, r := range rs {
		o := JobOutcome{
			JobID: r.JobID, Finish: r.Finish, Response: r.Response,
			Delay: r.Delay, Slowdown: r.Slowdown, Reason: r.Reason,
		}
		switch r.Outcome {
		case metrics.Rejected:
			o.Outcome = OutcomeRejected
		case metrics.Met:
			o.Outcome = OutcomeMet
		case metrics.Missed:
			o.Outcome = OutcomeMissed
		default:
			o.Outcome = OutcomeUnfinished
		}
		out[i] = o
	}
	return out
}

func toInternalJobs(jobs []Job) []workload.Job {
	out := make([]workload.Job, len(jobs))
	for i, j := range jobs {
		cls := workload.LowUrgency
		if j.HighUrgency {
			cls = workload.HighUrgency
		}
		out[i] = workload.Job{
			ID: j.ID, Submit: j.Submit, Runtime: j.Runtime,
			TraceEstimate: j.TraceEstimate, NumProc: j.NumProc,
			Deadline: j.Deadline, Class: cls,
		}
	}
	return out
}

func fromInternalJobs(jobs []workload.Job) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = Job{
			ID: j.ID, Submit: j.Submit, Runtime: j.Runtime,
			TraceEstimate: j.TraceEstimate, NumProc: j.NumProc,
			Deadline: j.Deadline, HighUrgency: j.Class == workload.HighUrgency,
		}
	}
	return out
}

// LoadSWF parses a Standard Workload Format trace (e.g. the real SDSC SP2
// archive file; gzip-compressed .swf.gz streams are detected and handled
// transparently), keeps the last lastN runnable jobs (0 keeps all), and
// assigns deadlines per the options' deadline model.
func LoadSWF(r io.Reader, o Options, lastN int) ([]Job, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	tr, err := swf.ParseAuto(r)
	if err != nil {
		return nil, err
	}
	tr = tr.CompletedOnly()
	if lastN > 0 {
		tr = tr.LastN(lastN)
	}
	jobs, err := workload.FromSWF(tr, o.Nodes)
	if err != nil {
		return nil, err
	}
	dcfg := workload.DefaultDeadlineConfig()
	dcfg.HighUrgencyFraction = o.HighUrgencyFraction
	dcfg.Ratio = o.DeadlineRatio
	withDL, err := workload.AssignDeadlines(jobs, dcfg)
	if err != nil {
		return nil, err
	}
	return fromInternalJobs(withDL), nil
}

// SaveSWF writes jobs as a Standard Workload Format trace.
func SaveSWF(w io.Writer, jobs []Job, maxNodes int) error {
	return swf.Write(w, workload.ToSWF(toInternalJobs(jobs), maxNodes))
}

// GenerateCalibratedWorkload fits the synthetic generator to a real SWF
// trace (arrival intensity and burstiness, runtime distribution,
// processor mix, estimate error mixture) and generates a statistically
// matching synthetic workload of o.Jobs jobs with deadlines assigned per
// the options — the privacy-preserving way to run the experiment suite
// against a site's own trace without shipping the trace.
func GenerateCalibratedWorkload(r io.Reader, o Options) ([]Job, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	tr, err := swf.ParseAuto(r)
	if err != nil {
		return nil, err
	}
	gen, err := workload.Calibrate(tr.CompletedOnly(), o.NodeCount())
	if err != nil {
		return nil, err
	}
	gen.Jobs = o.Jobs
	gen.Seed = o.Seed
	base, err := workload.Generate(gen)
	if err != nil {
		return nil, err
	}
	dcfg := workload.DefaultDeadlineConfig()
	dcfg.HighUrgencyFraction = o.HighUrgencyFraction
	dcfg.Ratio = o.DeadlineRatio
	withDL, err := workload.AssignDeadlines(base, dcfg)
	if err != nil {
		return nil, err
	}
	return fromInternalJobs(withDL), nil
}

// BuildFigure regenerates one of the paper's result figures ("figure1"
// through "figure4") at the given scale. Pass DefaultOptions() for the
// paper-scale run; smaller Jobs/Nodes values sweep faster.
func BuildFigure(id string, o Options) (Figure, error) {
	if err := o.Validate(); err != nil {
		return Figure{}, err
	}
	base := buildBase(o)
	var f experiment.Figure
	var err error
	switch id {
	case "figure1":
		f, err = experiment.Figure1(base)
	case "figure2":
		f, err = experiment.Figure2(base)
	case "figure3":
		f, err = experiment.Figure3(base)
	case "figure4":
		f, err = experiment.Figure4(base)
	case "prediction":
		f, err = experiment.FigurePrediction(base)
	case "allpolicies":
		f, err = experiment.FigureAllPolicies(base)
	case "hetero":
		f, err = experiment.FigureHetero(base)
	case "chaos":
		f, err = experiment.FigureChaos(base)
	default:
		return Figure{}, fmt.Errorf("clustersched: unknown figure %q (want figure1..figure4, prediction, allpolicies, hetero, or chaos)", id)
	}
	if err != nil {
		return Figure{}, err
	}
	return fromInternalFigure(f), nil
}

// FigureBuilder regenerates the paper's figures and workload table while
// generating the shared base workload only once, instead of once per
// figure. Extension figures (see ExtensionFigureIDs) manage their own
// workload variations and fall back to BuildFigure.
type FigureBuilder struct {
	o    Options
	base experiment.BaseConfig
	jobs []workload.Job
}

// NewFigureBuilder validates the options and prepares a builder; the base
// workload is generated lazily on the first figure or table request.
func NewFigureBuilder(o Options) (*FigureBuilder, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &FigureBuilder{o: o, base: buildBase(o)}, nil
}

func (b *FigureBuilder) baseJobs() ([]workload.Job, error) {
	if b.jobs == nil {
		jobs, err := experiment.GenerateBase(b.base)
		if err != nil {
			return nil, err
		}
		b.jobs = jobs
	}
	return b.jobs, nil
}

// BuildProgress is one sweep-progress notification (see SetProgress):
// Done of Total cells have finished; Cell identifies the one that just
// did. FromJournal marks a cell satisfied from the checkpoint journal
// instead of being run; Err is non-nil when the cell failed.
type BuildProgress struct {
	Done        int
	Total       int
	Cell        string
	FromJournal bool
	Err         error
}

// SetRunTimeout arms a per-simulation wall-clock watchdog for the
// builder's sweeps: any single run exceeding d is aborted (and retried
// once, since a timeout may be transient machine weather). Zero disables
// the watchdog.
func (b *FigureBuilder) SetRunTimeout(d time.Duration) { b.base.RunTimeout = d }

// SetWorkers caps the builder's sweep parallelism; n <= 0 restores the
// default (one worker per CPU).
func (b *FigureBuilder) SetWorkers(n int) { b.base.Workers = n }

// SetProgress installs a callback invoked after every finished sweep
// cell. Calls are serialized; fn must not block for long. Pass nil to
// remove it.
func (b *FigureBuilder) SetProgress(fn func(BuildProgress)) {
	if fn == nil {
		b.base.Progress = nil
		return
	}
	b.base.Progress = func(ev experiment.ProgressEvent) {
		fn(BuildProgress{
			Done: ev.Done, Total: ev.Total, Cell: ev.Spec.Ident(),
			FromJournal: ev.FromJournal, Err: ev.Err,
		})
	}
}

// OpenJournal attaches a checkpoint journal at path to the builder:
// every completed sweep cell of the paper figures (and the chaos
// experiment) is recorded there as it finishes, and cells already present
// — keyed by a content hash of the configuration, cell parameters and
// workload — are reused instead of re-run. The file is created if
// missing and is valid JSONL after every append, so an interrupted
// regeneration resumes from it losslessly. Returns the number of cells
// loaded from an existing journal.
func (b *FigureBuilder) OpenJournal(path string) (int, error) {
	j, err := checkpoint.Open(path)
	if err != nil {
		return 0, err
	}
	b.base.Journal = j
	return j.Len(), nil
}

// ObserveConfig selects which observability layers the builder records
// (see Observe). All layers off is valid and records nothing.
type ObserveConfig struct {
	// Trace records per-event simulation traces (job lifecycle, node
	// state, faults) for export as Chrome trace_event JSON or JSONL.
	Trace bool
	// Metrics accumulates counters/gauges/histograms across every run for
	// export in Prometheus text or JSON snapshot format.
	Metrics bool
	// Audit records every admission decision with its per-node evaluation
	// (risk σ for LibraRisk, share for Libra) and rejection reason.
	Audit bool
}

// Observation is the accumulated observability output of a builder's
// sweeps, merged deterministically across parallel workers: events and
// decisions are ordered by (run tag, sequence) regardless of worker
// interleaving. Cells satisfied from a checkpoint journal were not re-run
// and contribute no observations.
type Observation struct {
	sweep *obs.Sweep
}

// Empty reports whether nothing was recorded (all layers off, or no runs).
func (o *Observation) Empty() bool { return o == nil || o.sweep == nil }

// EventCount returns the number of trace events recorded.
func (o *Observation) EventCount() int {
	if o.Empty() {
		return 0
	}
	return len(o.sweep.Events())
}

// DecisionCount returns the number of admission decisions audited.
func (o *Observation) DecisionCount() int {
	if o.Empty() {
		return 0
	}
	return len(o.sweep.Decisions())
}

// WriteChromeTrace writes the recorded events as a Chrome trace_event
// JSON document (load in chrome://tracing or Perfetto). Each run becomes
// a process; job lifecycles become spans.
func (o *Observation) WriteChromeTrace(w io.Writer) error {
	if o.Empty() {
		return obs.WriteChromeTrace(w, nil)
	}
	return obs.WriteChromeTrace(w, o.sweep.Events())
}

// WriteTraceJSONL writes the recorded events as one JSON object per line.
func (o *Observation) WriteTraceJSONL(w io.Writer) error {
	if o.Empty() {
		return nil
	}
	return obs.WriteJSONL(w, o.sweep.Events())
}

// WritePrometheus writes the merged metrics in Prometheus text format.
func (o *Observation) WritePrometheus(w io.Writer) error {
	if o.Empty() || o.sweep.Registry() == nil {
		return nil
	}
	return o.sweep.Registry().WritePrometheus(w)
}

// WriteMetricsJSON writes the merged metrics as a JSON snapshot.
func (o *Observation) WriteMetricsJSON(w io.Writer) error {
	if o.Empty() || o.sweep.Registry() == nil {
		return nil
	}
	return o.sweep.Registry().WriteJSON(w)
}

// WriteAuditJSONL writes the admission audit log as one JSON decision per
// line, each carrying the candidate-node evaluations and, for rejections,
// the reason.
func (o *Observation) WriteAuditJSONL(w io.Writer) error {
	if o.Empty() {
		return nil
	}
	return obs.WriteAuditJSONL(w, o.sweep.Decisions())
}

// Observe arms observability on the builder: every simulation run by
// subsequent Build calls records the selected layers into the returned
// Observation. Figures are byte-identical with observability on or off —
// recording never alters scheduling decisions — but runs pay the
// recording cost, so leave it off for benchmarking. Calling Observe again
// replaces the previous observation. Extension figures other than "chaos"
// rebuild their own configs and are not observed.
func (b *FigureBuilder) Observe(cfg ObserveConfig) *Observation {
	sw := obs.NewSweep(obs.Options{Trace: cfg.Trace, Metrics: cfg.Metrics, Audit: cfg.Audit})
	b.base.Obs = sw
	return &Observation{sweep: sw}
}

// Build regenerates one figure. The paper figures ("figure1" through
// "figure4") share the builder's single base workload; results are
// identical to BuildFigure, which regenerates it per call.
func (b *FigureBuilder) Build(id string) (Figure, error) {
	return b.BuildContext(context.Background(), id)
}

// BuildContext is Build under a cancellable context: cancellation stops
// admitting sweep cells, aborts in-flight simulations at event-loop
// granularity, and returns an error wrapping the cancellation cause.
// Cells checkpointed before the cancellation stay in the journal (see
// OpenJournal). Extension figures other than "chaos" manage their own
// workload variations and only honor cancellation between runs.
func (b *FigureBuilder) BuildContext(ctx context.Context, id string) (Figure, error) {
	var from func(context.Context, experiment.BaseConfig, []workload.Job) (experiment.Figure, error)
	switch id {
	case "figure1":
		from = experiment.Figure1FromContext
	case "figure2":
		from = experiment.Figure2FromContext
	case "figure3":
		from = experiment.Figure3FromContext
	case "figure4":
		from = experiment.Figure4FromContext
	case "chaos":
		from = experiment.FigureChaosFromContext
	default:
		if err := ctx.Err(); err != nil {
			return Figure{}, err
		}
		return BuildFigure(id, b.o)
	}
	jobs, err := b.baseJobs()
	if err != nil {
		return Figure{}, err
	}
	f, err := from(ctx, b.base, jobs)
	if err != nil {
		return Figure{}, err
	}
	return fromInternalFigure(f), nil
}

// WriteWorkloadTable writes the §4 workload-characteristics table from
// the builder's shared base workload.
func (b *FigureBuilder) WriteWorkloadTable(w io.Writer) error {
	jobs, err := b.baseJobs()
	if err != nil {
		return err
	}
	tbl, err := experiment.BuildWorkloadTableFrom(b.base, jobs)
	if err != nil {
		return err
	}
	return experiment.WriteWorkloadTable(w, tbl)
}

// WriteWorkloadTableJSON writes the workload-characteristics table as
// JSON from the builder's shared base workload.
func (b *FigureBuilder) WriteWorkloadTableJSON(w io.Writer) error {
	jobs, err := b.baseJobs()
	if err != nil {
		return err
	}
	tbl, err := experiment.BuildWorkloadTableFrom(b.base, jobs)
	if err != nil {
		return err
	}
	return experiment.WriteWorkloadTableJSON(w, tbl)
}

// FigureIDs lists the paper's regenerable figures in order. The extension
// experiments ("prediction", "allpolicies", "hetero" — see
// ExtensionFigureIDs) are built on demand via BuildFigure and are not part
// of the paper set.
func FigureIDs() []string { return []string{"figure1", "figure2", "figure3", "figure4"} }

// ExtensionFigureIDs lists the extension experiments beyond the paper,
// including the fault-injection chaos experiment.
func ExtensionFigureIDs() []string { return []string{"allpolicies", "hetero", "prediction", "chaos"} }

// Replication is a multi-seed measurement: mean, sample standard
// deviation, and 95 % confidence half-width for the two evaluation
// metrics.
type Replication struct {
	Seeds         int
	FulfilledMean float64
	FulfilledStd  float64
	FulfilledCI95 float64
	SlowdownMean  float64
	SlowdownStd   float64
	SlowdownCI95  float64
}

// Replicate runs the configured simulation across n workload seeds
// (derived deterministically from o.Seed) and returns the metric
// distribution — the statistically sound way to compare policies.
func Replicate(o Options, n int) (Replication, error) {
	if err := o.Validate(); err != nil {
		return Replication{}, err
	}
	if n <= 0 {
		return Replication{}, fmt.Errorf("clustersched: Replicate with n = %d", n)
	}
	var kind experiment.PolicyKind
	switch o.Policy {
	case PolicyEDF:
		kind = experiment.EDF
	case PolicyLibra:
		kind = experiment.Libra
	case PolicyLibraRisk:
		kind = experiment.LibraRisk
	case PolicyFCFS:
		kind = experiment.FCFS
	case PolicyBackfillEASY:
		kind = experiment.BackfillEASY
	case PolicyBackfillConservative:
		kind = experiment.BackfillCons
	case PolicyQoPS:
		kind = experiment.QoPS
	}
	base := buildBase(o)
	base.QoPSSlack = o.QoPSSlackFactor
	if len(o.NodeRatings) > 0 {
		base.Ratings = o.NodeRatings
	}
	spec := experiment.RunSpec{
		Policy:             kind,
		ArrivalDelayFactor: o.ArrivalDelayFactor,
		InaccuracyPct:      o.InaccuracyPct,
		Deadline:           base.Deadline,
	}
	rep, err := experiment.RunReplicated(base, spec, experiment.SeedsFrom(o.Seed, n))
	if err != nil {
		return Replication{}, err
	}
	return Replication{
		Seeds:         rep.Seeds,
		FulfilledMean: rep.FulfilledMean, FulfilledStd: rep.FulfilledStd, FulfilledCI95: rep.FulfilledCI95,
		SlowdownMean: rep.SlowdownMean, SlowdownStd: rep.SlowdownStd, SlowdownCI95: rep.SlowdownCI95,
	}, nil
}

func buildBase(o Options) experiment.BaseConfig {
	base := experiment.DefaultBase()
	base.Nodes = o.Nodes
	base.Rating = o.Rating
	base.Cluster.RefRating = o.Rating
	base.Cluster.WorkConserving = o.WorkConserving
	base.Generator.Jobs = o.Jobs
	base.Generator.Seed = o.Seed
	base.Generator.MaxProcs = o.Nodes
	base.Deadline.HighUrgencyFraction = o.HighUrgencyFraction
	base.Deadline.Ratio = o.DeadlineRatio
	base.Shards = o.Shards
	return base
}

// Figure, Panel and Series mirror the experiment harness output for
// rendering outside this module.
type Figure struct {
	ID     string
	Title  string
	Panels []Panel
}

// Panel is one subplot: a metric against a swept parameter.
type Panel struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Series is one policy's line in a panel.
type Series struct {
	Name string
	Y    []float64
}

func fromInternalFigure(f experiment.Figure) Figure {
	out := Figure{ID: f.ID, Title: f.Title}
	for _, p := range f.Panels {
		np := Panel{Name: p.Name, XLabel: p.XLabel, YLabel: p.YLabel, X: append([]float64(nil), p.X...)}
		for _, s := range p.Series {
			np.Series = append(np.Series, Series{Name: s.Name, Y: append([]float64(nil), s.Y...)})
		}
		out.Panels = append(out.Panels, np)
	}
	return out
}

func toInternalFigure(f Figure) experiment.Figure {
	out := experiment.Figure{ID: f.ID, Title: f.Title}
	for _, p := range f.Panels {
		np := experiment.Panel{Name: p.Name, XLabel: p.XLabel, YLabel: p.YLabel, X: p.X}
		for _, s := range p.Series {
			np.Series = append(np.Series, experiment.Series{Name: s.Name, Y: s.Y})
		}
		out.Panels = append(out.Panels, np)
	}
	return out
}

// RenderFigure writes the figure as aligned tables plus ASCII plots.
func RenderFigure(w io.Writer, f Figure) error {
	return experiment.WriteFigure(w, toInternalFigure(f))
}

// RenderFigureCSV writes the figure as tidy CSV (figure,panel,policy,x,y).
func RenderFigureCSV(w io.Writer, f Figure) error {
	return experiment.WriteFigureCSV(w, toInternalFigure(f))
}

// RenderFigureJSON writes the figure as indented JSON.
func RenderFigureJSON(w io.Writer, f Figure) error {
	return experiment.WriteFigureJSON(w, toInternalFigure(f))
}

// RenderFigureSVG writes the figure as a standalone SVG document with one
// line chart per panel, in the paper's 2×2 layout.
func RenderFigureSVG(w io.Writer, f Figure) error {
	return experiment.WriteFigureSVG(w, toInternalFigure(f))
}

// RenderWorkloadTable writes the §4 workload-characteristics table for the
// options' synthetic trace, next to the paper's reference values.
func RenderWorkloadTable(w io.Writer, o Options) error {
	if err := o.Validate(); err != nil {
		return err
	}
	tbl, err := experiment.BuildWorkloadTable(buildBase(o))
	if err != nil {
		return err
	}
	return experiment.WriteWorkloadTable(w, tbl)
}
